// Exact Ashenhurst disjoint decomposition (Theorem 1).
//
// A function f has a disjoint decomposition F(phi(B), A) iff every row of
// the 2D truth table is all-0, all-1, the pattern V, or its complement.
// This module tests the condition, extracts (V, T), and rebuilds phi and F -
// used by the paper-example programs and as a ground truth for tests.
#pragma once

#include <optional>

#include "core/setting.hpp"
#include "core/two_dim_table.hpp"

namespace dalut::core {

struct ExactDecomposition {
  Partition partition;
  std::vector<std::uint8_t> pattern;  ///< V: truth table of phi over B
  std::vector<RowType> types;         ///< T: defines F over (phi, A)

  /// phi(B) as a truth table over the bound inputs (packed column index).
  TruthTable phi() const;
  /// F(phi, A): input code = (row << 1) | phi.
  TruthTable compose_f() const;
  /// Evaluates F(phi(B), A) on an original input code.
  bool eval(InputWord x) const;
};

/// Returns the decomposition if f is exactly decomposable under `partition`
/// (Theorem 1 check), nullopt otherwise. Constant rows are typed
/// AllZero/AllOne; V is taken from the first non-constant row.
std::optional<ExactDecomposition> exact_decomposition(
    const TruthTable& f, const Partition& partition);

/// True iff f has *some* nontrivial exact disjoint decomposition with the
/// given bound-set size (tries every partition; exponential, test-sized n).
bool has_exact_decomposition(const TruthTable& f, unsigned bound_size);

}  // namespace dalut::core
