// Error metrics between an accurate function and an approximation.
#pragma once

#include <vector>

#include "core/input_distribution.hpp"
#include "core/multi_output_function.hpp"
#include "util/thread_pool.hpp"

namespace dalut::core {

struct ErrorReport {
  double med = 0.0;         ///< mean error distance (paper's metric)
  double max_ed = 0.0;      ///< worst-case error distance
  double error_rate = 0.0;  ///< probability of any output mismatch
  double mse = 0.0;         ///< mean squared error distance
};

/// MED(G, Ghat) = sum_X p(X) |Bin(G(X)) - Bin(Ghat(X))|.
/// Domains of >= 2^14 inputs reduce over a fixed grid of index chunks (in
/// chunk order, split over `pool` when given), so the result is identical
/// with or without a pool at any worker count.
double mean_error_distance(const MultiOutputFunction& g,
                           const std::vector<OutputWord>& approx_values,
                           const InputDistribution& dist,
                           util::ThreadPool* pool = nullptr);

ErrorReport error_report(const MultiOutputFunction& g,
                         const std::vector<OutputWord>& approx_values,
                         const InputDistribution& dist,
                         util::ThreadPool* pool = nullptr);

}  // namespace dalut::core
