// Error metrics between an accurate function and an approximation.
#pragma once

#include <vector>

#include "core/input_distribution.hpp"
#include "core/multi_output_function.hpp"

namespace dalut::core {

struct ErrorReport {
  double med = 0.0;         ///< mean error distance (paper's metric)
  double max_ed = 0.0;      ///< worst-case error distance
  double error_rate = 0.0;  ///< probability of any output mismatch
  double mse = 0.0;         ///< mean squared error distance
};

/// MED(G, Ghat) = sum_X p(X) |Bin(G(X)) - Bin(Ghat(X))|.
double mean_error_distance(const MultiOutputFunction& g,
                           const std::vector<OutputWord>& approx_values,
                           const InputDistribution& dist);

ErrorReport error_report(const MultiOutputFunction& g,
                         const std::vector<OutputWord>& approx_values,
                         const InputDistribution& dist);

}  // namespace dalut::core
