// Per-input cost arrays for optimizing one output bit.
//
// c_v(X) = p(X) * |Bin(G(X)) - Bin(Yhat)| where Yhat's bit k is v and the
// other bits follow the chosen LSB model:
//
//  * kCurrentApprox - all other bits from the current approximation
//    (rounds >= 2 of both algorithms).
//  * kAccurateFill  - MSBs from the approximation, not-yet-optimized LSBs
//    from the accurate function (DALTA's first round, Sec. II-B).
//  * kPredictive    - MSBs from the approximation, LSBs set to the values an
//    error-minimizing optimizer would later pick (BS-SA's first round,
//    Sec. III-B three-case model).
#pragma once

#include <cstdint>
#include <vector>

#include "core/input_distribution.hpp"
#include "core/multi_output_function.hpp"
#include "util/thread_pool.hpp"

namespace dalut::core {

enum class LsbModel {
  kCurrentApprox,
  kAccurateFill,
  kPredictive,
};

/// Error metric the optimization minimizes. The whole algorithm family works
/// for any metric that decomposes as sum_X p(X) loss(Y, Yhat):
///  * kMed - |Y - Yhat| (the paper's metric),
///  * kMse - (Y - Yhat)^2,
///  * kErrorRate - [Y != Yhat].
/// The predictive LSB model (Sec. III-B) carries over: the LSB assignment
/// minimizing |Y - Yhat| also minimizes its square, and the error-rate loss
/// is 0 iff the MSBs already match exactly.
enum class CostMetric {
  kMed,
  kMse,
  kErrorRate,
};

struct BitCostArrays {
  std::vector<double> c0;  ///< weighted cost of approximating bit k as 0
  std::vector<double> c1;  ///< weighted cost of approximating bit k as 1
  /// Process-unique id of the arrays' contents, stamped by build_bit_costs.
  /// The evaluation engine's gather memo keys on it (core/eval_workspace.hpp);
  /// 0 means "unknown provenance" and disables caching.
  std::uint64_t epoch = 0;
};

/// Next free epoch id (atomic, never returns 0). build_bit_costs stamps each
/// result; callers that mutate cost arrays in place must re-stamp them.
std::uint64_t next_cost_epoch() noexcept;

/// `approx_values` holds the current approximation Ghat(X) per input; for the
/// first-round models only its bits above k are read. `k` is 0-based.
/// When `pool` is given and the 2^n domain is large (n >= 14), the per-input
/// loop splits over the pool; every input writes only its own slot, so the
/// result is identical at any worker count.
BitCostArrays build_bit_costs(const MultiOutputFunction& g,
                              const std::vector<OutputWord>& approx_values,
                              unsigned k, LsbModel model,
                              const InputDistribution& dist,
                              CostMetric metric = CostMetric::kMed,
                              util::ThreadPool* pool = nullptr);

}  // namespace dalut::core
