// Variable partitions omega = (A, B): free set A indexes the rows and bound
// set B the columns of the 2D truth table (Sec. II-A).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/truth_table.hpp"
#include "util/rng.hpp"

namespace dalut::core {

class Partition {
 public:
  /// `bound_mask` selects the bound-set inputs B; the rest form A.
  Partition(unsigned num_inputs, std::uint32_t bound_mask);

  /// Uniformly random partition with |B| = bound_size.
  static Partition random(unsigned num_inputs, unsigned bound_size,
                          util::Rng& rng);

  unsigned num_inputs() const noexcept { return num_inputs_; }
  std::uint32_t bound_mask() const noexcept { return bound_mask_; }
  std::uint32_t free_mask() const noexcept {
    return ~bound_mask_ & ((std::uint32_t{1} << num_inputs_) - 1);
  }
  unsigned bound_size() const noexcept;
  unsigned free_size() const noexcept { return num_inputs_ - bound_size(); }
  std::size_t num_cols() const noexcept {
    return std::size_t{1} << bound_size();
  }
  std::size_t num_rows() const noexcept {
    return std::size_t{1} << free_size();
  }

  /// 0-based input indices in B / A, ascending.
  std::vector<unsigned> bound_inputs() const;
  std::vector<unsigned> free_inputs() const;

  bool in_bound_set(unsigned input) const noexcept {
    return (bound_mask_ >> input) & 1u;
  }

  /// Column index of input code x: the bound-set bits, packed.
  std::uint32_t col_of(InputWord x) const noexcept;
  /// Row index of input code x: the free-set bits, packed.
  std::uint32_t row_of(InputWord x) const noexcept;
  /// Inverse mapping: reassembles the input code from (row, col).
  InputWord input_of(std::uint32_t row, std::uint32_t col) const noexcept;

  /// All neighbours: partitions whose free set differs in exactly one
  /// element (one free input swapped with one bound input), per Sec. III-C.
  std::vector<Partition> all_neighbours() const;
  /// `count` distinct random neighbours (fewer if fewer exist) - GenNeib.
  std::vector<Partition> random_neighbours(unsigned count,
                                           util::Rng& rng) const;

  std::string to_string() const;

  bool operator==(const Partition& other) const = default;

 private:
  unsigned num_inputs_;
  std::uint32_t bound_mask_;
};

}  // namespace dalut::core
