// Shared internals of the text formats (dalut-config, dalut-checkpoint,
// dalut-table): line-anchored reading, hardened numeric parsing with
// bounded token echoes, and per-setting record IO.
//
// Hostile-input policy: every parse error is a std::invalid_argument whose
// message is anchored to a line number and echoes at most kMaxTokenEcho
// characters of the offending token, with non-printable bytes escaped — a
// malformed file can never blow up the error path itself (multi-megabyte
// messages, terminal-control bytes, NULs).
#pragma once

#include <cstdint>
#include <cstdio>
#include <istream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/setting.hpp"

namespace dalut::core::detail {

/// Longest slice of a hostile token echoed back in an error message.
inline constexpr std::size_t kMaxTokenEcho = 40;

/// Bounded, printable excerpt of `token` for error messages.
inline std::string token_excerpt(const std::string& token) {
  std::string out;
  out.reserve(kMaxTokenEcho + 8);
  for (std::size_t i = 0; i < token.size() && i < kMaxTokenEcho; ++i) {
    const unsigned char c = static_cast<unsigned char>(token[i]);
    if (c >= 0x20 && c < 0x7f) {
      out.push_back(static_cast<char>(c));
    } else {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\x%02x", c);
      out += buf;
    }
  }
  if (token.size() > kMaxTokenEcho) out += "...";
  return out;
}

[[noreturn]] inline void fail_at(std::size_t line, const std::string& what) {
  throw std::invalid_argument("line " + std::to_string(line) + ": " + what);
}

/// A line reader that tracks the line number for error messages.
class LineReader {
 public:
  explicit LineReader(std::istream& in) : in_(in) {}

  /// Next non-empty, non-comment line; throws at EOF.
  std::string next() {
    std::string line;
    while (std::getline(in_, line)) {
      ++number_;
      const auto hash = line.find('#');
      if (hash != std::string::npos) line.erase(hash);
      while (!line.empty() && (line.back() == ' ' || line.back() == '\r')) {
        line.pop_back();
      }
      if (!line.empty()) return line;
    }
    throw std::invalid_argument("unexpected end of file at line " +
                                std::to_string(number_));
  }

  std::size_t number() const noexcept { return number_; }

 private:
  std::istream& in_;
  std::size_t number_ = 0;
};

/// Splits a line into whitespace-separated tokens.
inline std::vector<std::string> tokens_of(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream stream(line);
  std::string token;
  while (stream >> token) tokens.push_back(token);
  return tokens;
}

/// Finds `key` in tokens and returns the following token.
inline std::string value_after(const std::vector<std::string>& tokens,
                               const std::string& key, std::size_t line) {
  for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
    if (tokens[i] == key) return tokens[i + 1];
  }
  fail_at(line, "missing '" + key + "'");
}

/// Expects the line to be "<key> <payload>" and returns the payload.
inline std::string expect_keyed_line(LineReader& reader,
                                     const std::string& key) {
  const auto line = reader.next();
  const auto tokens = tokens_of(line);
  if (tokens.size() != 2 || tokens[0] != key) {
    fail_at(reader.number(), "expected '" + key + " <value>'");
  }
  return tokens[1];
}

/// Parses an unsigned integer (base 10, or base 16 with 0x prefix when
/// `base0`), rejecting trailing garbage, overflow, and values > `max`.
/// The token must start with a digit: stoull's silent tolerance for a
/// leading '+' (or, post-negation, '-') contradicts the hostile-input
/// contract — no writer ever emits signs on unsigned fields.
inline std::uint64_t parse_unsigned(const std::string& token, std::size_t line,
                                    const char* what,
                                    std::uint64_t max =
                                        std::numeric_limits<std::uint64_t>::max(),
                                    bool base0 = false) {
  if (token.empty() || token[0] < '0' || token[0] > '9') {
    fail_at(line, std::string(what) + " '" + token_excerpt(token) +
                      "' is not a valid number");
  }
  std::size_t consumed = 0;
  unsigned long long value = 0;
  try {
    value = std::stoull(token, &consumed, base0 ? 0 : 10);
  } catch (const std::exception&) {
    fail_at(line, std::string(what) + " '" + token_excerpt(token) +
                      "' is not a valid number");
  }
  if (consumed != token.size()) {
    fail_at(line, std::string(what) + " '" + token_excerpt(token) +
                      "' is not a valid number");
  }
  if (value > max) {
    fail_at(line, std::string(what) + " '" + token_excerpt(token) +
                      "' is out of range (max " + std::to_string(max) + ")");
  }
  return value;
}

/// Parses a double, rejecting trailing garbage ("inf"/"nan" allowed — they
/// round-trip sentinel errors such as an undecided setting's infinity).
/// stod's silent extras are rejected too: a leading '+' and hexfloats
/// ("0x1p3") never come from our writers, so they are hostile input, not
/// numbers.
inline double parse_double(const std::string& token, std::size_t line,
                           const char* what) {
  const bool hexfloat =
      token.find('x') != std::string::npos ||
      token.find('X') != std::string::npos;
  if (token.empty() || token[0] == '+' || hexfloat) {
    fail_at(line, std::string(what) + " '" + token_excerpt(token) +
                      "' is not a valid number");
  }
  std::size_t consumed = 0;
  double value = 0.0;
  try {
    value = std::stod(token, &consumed);
  } catch (const std::exception&) {
    fail_at(line, std::string(what) + " '" + token_excerpt(token) +
                      "' is not a valid number");
  }
  if (consumed != token.size()) {
    fail_at(line, std::string(what) + " '" + token_excerpt(token) +
                      "' is not a valid number");
  }
  return value;
}

std::string bits_to_string(const std::vector<std::uint8_t>& bits);
std::string types_to_string(const std::vector<RowType>& types);
std::vector<std::uint8_t> parse_bits(const std::string& s, std::size_t line);
std::vector<RowType> parse_types(const std::string& s, std::size_t line);

const char* mode_name(DecompMode mode) noexcept;

/// Writes one per-bit setting record ("bit k mode ... / pattern ... /
/// types ..."), the unit shared by dalut-config and dalut-checkpoint.
/// The stream should carry precision(17) so errors round-trip exactly.
void write_setting_record(std::ostream& out, unsigned k, const Setting& s);

/// Reads one per-bit setting record. Returns the bit index; validates the
/// partition against `num_inputs` and every payload length against the
/// partition. Throws line-anchored std::invalid_argument on anything off.
unsigned read_setting_record(LineReader& reader, unsigned num_inputs,
                             unsigned num_outputs, Setting& out);

}  // namespace dalut::core::detail
