#include "baseline/round_in.hpp"

#include <algorithm>
#include <cassert>
#include <vector>

namespace dalut::baseline {

RoundIn::RoundIn(const core::MultiOutputFunction& g, unsigned dropped_bits)
    : num_inputs_(g.num_inputs()),
      num_outputs_(g.num_outputs()),
      dropped_bits_(dropped_bits) {
  assert(dropped_bits >= 1 && dropped_bits < g.num_inputs());
  const std::size_t block = std::size_t{1} << dropped_bits;
  table_.resize(table_entries());
  std::vector<core::OutputWord> outputs(block);
  for (std::size_t entry = 0; entry < table_.size(); ++entry) {
    const core::InputWord base =
        static_cast<core::InputWord>(entry << dropped_bits);
    for (std::size_t offset = 0; offset < block; ++offset) {
      outputs[offset] = g.value(base + static_cast<core::InputWord>(offset));
    }
    // Median output of the block (lower median for even block sizes).
    std::nth_element(outputs.begin(), outputs.begin() + (block - 1) / 2,
                     outputs.end());
    table_[entry] = outputs[(block - 1) / 2];
  }
}

std::vector<core::OutputWord> RoundIn::values() const {
  std::vector<core::OutputWord> all(std::size_t{1} << num_inputs_);
  for (core::InputWord x = 0; x < all.size(); ++x) all[x] = eval(x);
  return all;
}

}  // namespace dalut::baseline
