// RoundIn baseline (Sec. V-B): rounds off w input bits. The inputs are
// partitioned into blocks of 2^w adjacent codes; every code in a block reads
// the block's *median* output from a 2^(n-w)-entry LUT of m-bit words.
#pragma once

#include "core/input_distribution.hpp"
#include "core/multi_output_function.hpp"

namespace dalut::baseline {

class RoundIn {
 public:
  /// Drops the w least significant input bits of g (0 < w < n).
  RoundIn(const core::MultiOutputFunction& g, unsigned dropped_bits);

  unsigned num_inputs() const noexcept { return num_inputs_; }
  unsigned num_outputs() const noexcept { return num_outputs_; }
  unsigned dropped_bits() const noexcept { return dropped_bits_; }
  std::size_t table_entries() const noexcept {
    return std::size_t{1} << (num_inputs_ - dropped_bits_);
  }

  core::OutputWord eval(core::InputWord x) const noexcept {
    return table_[x >> dropped_bits_];
  }
  std::vector<core::OutputWord> values() const;

 private:
  unsigned num_inputs_;
  unsigned num_outputs_;
  unsigned dropped_bits_;
  std::vector<core::OutputWord> table_;
};

}  // namespace dalut::baseline
