// RoundOut baseline (Sec. V-B): rounds off the q output LSBs and keeps the
// rest, implemented as a full 2^n-entry LUT of (m - q)-bit words.
#pragma once

#include "core/evaluate.hpp"
#include "core/input_distribution.hpp"
#include "core/multi_output_function.hpp"

namespace dalut::baseline {

class RoundOut {
 public:
  /// Drops the q least significant output bits of g (0 <= q < m).
  RoundOut(const core::MultiOutputFunction& g, unsigned dropped_bits);

  unsigned num_inputs() const noexcept { return num_inputs_; }
  unsigned num_outputs() const noexcept { return num_outputs_; }
  unsigned dropped_bits() const noexcept { return dropped_bits_; }
  /// Stored word width (m - q) and LUT entry count (2^n).
  unsigned stored_bits() const noexcept { return num_outputs_ - dropped_bits_; }
  std::size_t table_entries() const noexcept {
    return std::size_t{1} << num_inputs_;
  }

  /// The approximate output: stored MSBs with the dropped LSBs read as 0.
  core::OutputWord eval(core::InputWord x) const noexcept {
    return static_cast<core::OutputWord>(stored_[x]) << dropped_bits_;
  }
  std::vector<core::OutputWord> values() const;

  /// Picks the smallest q whose MED exceeds `med_floor` (the paper tunes q
  /// per benchmark so RoundOut's MED is larger than DALTA's). Returns m-1 if
  /// even dropping all but one bit stays below the floor.
  static unsigned choose_q(const core::MultiOutputFunction& g,
                           const core::InputDistribution& dist,
                           double med_floor);

 private:
  unsigned num_inputs_;
  unsigned num_outputs_;
  unsigned dropped_bits_;
  std::vector<std::uint32_t> stored_;
};

}  // namespace dalut::baseline
