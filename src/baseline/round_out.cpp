#include "baseline/round_out.hpp"

#include <cassert>

namespace dalut::baseline {

RoundOut::RoundOut(const core::MultiOutputFunction& g, unsigned dropped_bits)
    : num_inputs_(g.num_inputs()),
      num_outputs_(g.num_outputs()),
      dropped_bits_(dropped_bits) {
  assert(dropped_bits < g.num_outputs());
  stored_.resize(g.domain_size());
  for (core::InputWord x = 0; x < stored_.size(); ++x) {
    stored_[x] = g.value(x) >> dropped_bits;
  }
}

std::vector<core::OutputWord> RoundOut::values() const {
  std::vector<core::OutputWord> table(table_entries());
  for (core::InputWord x = 0; x < table.size(); ++x) table[x] = eval(x);
  return table;
}

unsigned RoundOut::choose_q(const core::MultiOutputFunction& g,
                            const core::InputDistribution& dist,
                            double med_floor) {
  for (unsigned q = 1; q < g.num_outputs(); ++q) {
    const RoundOut candidate(g, q);
    const double med =
        core::mean_error_distance(g, candidate.values(), dist);
    if (med > med_floor) return q;
  }
  return g.num_outputs() - 1;
}

}  // namespace dalut::baseline
