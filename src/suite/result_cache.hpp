// Persistent on-disk result cache for suite runs (format "dalut-result v1").
//
// A completed job's outcome — error metrics, stored-bit count, and the
// optimized per-bit settings — is keyed by a 64-bit FNV-1a digest folding
// every parameter that shapes the search trajectory *plus* the content of
// the function's truth table (same digest family as the checkpoint
// params_digest, extended with the function/table words). Re-running a
// manifest after a code-irrelevant edit, or adding one row to a table, then
// serves the unchanged jobs from disk instead of re-optimizing them.
//
// One file per key ("<16-hex-digits>.result") in the cache directory,
// written atomically (tmp + fsync + rename, like checkpoints), so readers
// never observe a torn entry and a crash mid-store leaves the previous
// entry (or nothing) behind. Only *completed* runs are cached; cancelled or
// deadline-stopped results are never served back.
//
// Hits, misses, stores, and evictions flow into the telemetry registry as
// `suite.cache.*` counters.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/multi_output_function.hpp"
#include "core/setting.hpp"
#include "suite/manifest.hpp"

namespace dalut::suite {

/// The cached outcome of one completed job. Every field is a pure function
/// of the job parameters and the function content (bit-deterministic at any
/// worker count), except `runtime_seconds`, which records what the original
/// computation cost and is excluded from deterministic reports.
struct ResultRecord {
  std::string algorithm;  ///< bssa | dalta | round-in | round-out
  unsigned num_inputs = 0;
  unsigned num_outputs = 0;
  double med = 0.0;
  double mse = 0.0;
  double error_rate = 0.0;
  double max_ed = 0.0;
  double runtime_seconds = 0.0;
  std::uint64_t partitions_evaluated = 0;
  std::uint64_t stored_bits = 0;  ///< LUT bits the realized table stores
  /// One setting per output bit for bssa/dalta results; empty for the
  /// rounding baselines (they carry no decomposition settings).
  std::vector<core::Setting> settings;
};

void write_result(std::ostream& out, const ResultRecord& record);
std::string result_to_string(const ResultRecord& record);

/// Parses a record; throws std::invalid_argument with a line-anchored
/// message on malformed input.
ResultRecord read_result(std::istream& in);
ResultRecord result_from_string(const std::string& text);

/// The cache key of `job` run against `g`: job parameters (normalized per
/// algorithm, so editing a field the algorithm ignores does not spill the
/// cache) folded with the full truth-table content.
std::uint64_t result_key(const SuiteJob& job,
                         const core::MultiOutputFunction& g);

class ResultCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t stores = 0;
    std::uint64_t evictions = 0;
    std::uint64_t store_failures = 0;  ///< stores abandoned after retries
  };

  /// Opens (creating if needed) the cache directory. `max_entries == 0`
  /// means unbounded; otherwise stores evict the oldest entries (by file
  /// modification time) down to the cap. Throws std::runtime_error if the
  /// directory cannot be created.
  explicit ResultCache(std::string dir, std::size_t max_entries = 0);

  /// Looks `key` up; returns the record on a hit, nullopt on a miss or an
  /// unreadable/corrupt entry (a corrupt entry counts as a miss and is
  /// removed so the slot heals on the next store). Thread-safe.
  std::optional<ResultRecord> load(std::uint64_t key);

  /// Atomically writes `record` under `key`, then trims the cache to
  /// `max_entries`. Thread-safe. Never throws on I/O failure: after a
  /// bounded retry of transient errors, a failed store removes its tmp
  /// file, counts a store_failure ("suite.cache.store_failures"), and
  /// degrades to recompute-on-next-run — the caller already holds the
  /// result, so a broken cache must not fail the job.
  void store(std::uint64_t key, const ResultRecord& record);

  Stats stats() const;
  const std::string& dir() const noexcept { return dir_; }
  std::string path_of(std::uint64_t key) const;

 private:
  void trim_locked();

  mutable std::mutex mutex_;
  std::string dir_;
  std::size_t max_entries_;
  Stats stats_;
};

}  // namespace dalut::suite
