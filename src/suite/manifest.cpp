#include "suite/manifest.hpp"

#include <cerrno>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

#include "core/format.hpp"
#include "core/serialize_detail.hpp"
#include "util/retry.hpp"

namespace dalut::suite {

namespace {

using core::detail::fail_at;
using core::detail::token_excerpt;

constexpr core::format::FormatSpec kFormat{"dalut-manifest", 1, 1};
constexpr std::size_t kMaxJobs = 4096;

bool valid_name(const std::string& name) {
  if (name.empty() || name.size() > 64) return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

unsigned parse_field_unsigned(const std::string& value, std::size_t line,
                              const char* what, std::uint64_t max) {
  return static_cast<unsigned>(
      core::detail::parse_unsigned(value, line, what, max));
}

double parse_field_double(const std::string& value, std::size_t line,
                          const char* what) {
  return core::detail::parse_double(value, line, what);
}

/// Applies one `key=value` token to `job`. Validation that spans fields
/// (algorithm/arch compatibility) happens after the whole line is read.
void apply_field(SuiteJob& job, const std::string& key,
                 const std::string& value, std::size_t line) {
  if (key == "benchmark") {
    job.benchmark = value;
  } else if (key == "table") {
    job.table = value;
  } else if (key == "width") {
    job.width = parse_field_unsigned(value, line, "width", 26);
  } else if (key == "algorithm") {
    if (value != "bssa" && value != "dalta" && value != "round-in" &&
        value != "round-out") {
      fail_at(line, "unknown algorithm '" + token_excerpt(value) + "'");
    }
    job.algorithm = value;
  } else if (key == "arch") {
    if (value != "dalta" && value != "bto-normal" &&
        value != "bto-normal-nd") {
      fail_at(line, "unknown arch '" + token_excerpt(value) + "'");
    }
    job.arch = value;
  } else if (key == "bound") {
    job.bound = parse_field_unsigned(value, line, "bound", 25);
  } else if (key == "rounds") {
    job.rounds = parse_field_unsigned(value, line, "rounds", 1u << 20);
  } else if (key == "partitions") {
    job.partitions = parse_field_unsigned(value, line, "partitions", 1u << 20);
  } else if (key == "patterns") {
    job.patterns = parse_field_unsigned(value, line, "patterns", 1u << 20);
  } else if (key == "beams") {
    job.beams = parse_field_unsigned(value, line, "beams", 4096);
  } else if (key == "chains") {
    job.chains = parse_field_unsigned(value, line, "chains", 4096);
  } else if (key == "nd-candidates") {
    job.nd_candidates = parse_field_unsigned(value, line, "nd-candidates", 4096);
  } else if (key == "metric") {
    if (value != "med" && value != "mse" && value != "er") {
      fail_at(line, "unknown metric '" + token_excerpt(value) + "'");
    }
    job.metric = value;
  } else if (key == "delta") {
    job.delta = parse_field_double(value, line, "delta");
  } else if (key == "delta-prime") {
    job.delta_prime = parse_field_double(value, line, "delta-prime");
  } else if (key == "seed") {
    job.seed = core::detail::parse_unsigned(value, line, "seed");
  } else if (key == "drop") {
    job.drop = parse_field_unsigned(value, line, "drop", 25);
  } else if (key == "budget") {
    job.budget = parse_field_double(value, line, "budget");
    if (job.budget < 0.0) fail_at(line, "budget must be >= 0");
  } else {
    fail_at(line, "unknown job field '" + token_excerpt(key) + "'");
  }
}

void apply_fields(SuiteJob& job, const std::vector<std::string>& tokens,
                  std::size_t first, std::size_t line) {
  for (std::size_t i = first; i < tokens.size(); ++i) {
    const auto eq = tokens[i].find('=');
    if (eq == std::string::npos || eq == 0) {
      fail_at(line, "expected key=value, got '" + token_excerpt(tokens[i]) +
                        "'");
    }
    apply_field(job, tokens[i].substr(0, eq), tokens[i].substr(eq + 1), line);
  }
}

/// Cross-field checks a finished job line must pass.
void validate_job(const SuiteJob& job, std::size_t line) {
  if (job.algorithm == "dalta" && job.arch != "dalta") {
    fail_at(line, "job '" + job.name +
                      "': the DALTA algorithm only supports arch=dalta");
  }
  if (!job.table.empty() && job.table.find('\n') != std::string::npos) {
    fail_at(line, "table path contains a newline");
  }
  if (job.rounds < 1) fail_at(line, "rounds must be >= 1");
}

}  // namespace

Manifest read_manifest(std::istream& in) {
  core::detail::LineReader reader(in);
  const auto magic_line = reader.next();  // read first: arg order is unspecified
  core::format::check_header_line(magic_line, kFormat, reader.number());

  Manifest manifest;
  SuiteJob defaults;
  std::set<std::string> names;
  for (;;) {
    const auto line = reader.next();
    const auto tokens = core::detail::tokens_of(line);
    const auto line_no = reader.number();
    if (tokens[0] == "end") {
      if (tokens.size() != 1) fail_at(line_no, "trailing tokens after 'end'");
      break;
    }
    if (tokens[0] == "default") {
      apply_fields(defaults, tokens, 1, line_no);
      continue;
    }
    if (tokens[0] != "job") {
      fail_at(line_no, "expected 'job', 'default', or 'end', got '" +
                           token_excerpt(tokens[0]) + "'");
    }
    if (tokens.size() < 2) fail_at(line_no, "job line needs a name");
    SuiteJob job = defaults;
    job.name = tokens[1];
    if (!valid_name(job.name)) {
      fail_at(line_no, "job name '" + token_excerpt(job.name) +
                           "' must be 1-64 chars of [A-Za-z0-9._-]");
    }
    if (!names.insert(job.name).second) {
      fail_at(line_no, "duplicate job name '" + job.name + "'");
    }
    apply_fields(job, tokens, 2, line_no);
    validate_job(job, line_no);
    if (manifest.jobs.size() >= kMaxJobs) {
      fail_at(line_no, "manifest exceeds " + std::to_string(kMaxJobs) +
                           " jobs");
    }
    manifest.jobs.push_back(std::move(job));
  }
  if (manifest.jobs.empty()) {
    throw std::invalid_argument("manifest lists no jobs");
  }
  return manifest;
}

Manifest manifest_from_string(const std::string& text) {
  std::istringstream in(text);
  return read_manifest(in);
}

Manifest load_manifest(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw util::IoError("cannot open manifest", path, errno);
  }
  return read_manifest(in);
}

}  // namespace dalut::suite
