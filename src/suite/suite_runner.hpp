// Sharded suite execution: every job of a manifest runs through one shared
// ThreadPool, with per-job run control, checkpointing, and telemetry
// multiplexed over the PR-1..4 single-run machinery.
//
// Scheduling: jobs shard across the pool via parallel_for (manifest order,
// deterministic chunking), and each job's search internally reuses the same
// pool through nested parallel_for calls — a 4-job suite on 8 workers keeps
// all 8 busy, first across jobs, then inside the stragglers. Job results
// are bit-deterministic at any worker count (the PR-1 engine guarantee), so
// the deterministic report below is byte-identical for `-j1` and `-j8`.
//
// Resume: with a checkpoint directory, each unfinished job periodically
// snapshots to "<dir>/<job-name>.ck" (atomic, crash-safe). A killed suite
// re-run serves finished jobs from the result cache and resumes unfinished
// ones from their checkpoints bit-identically; completed jobs delete their
// checkpoint (and any stale *.tmp beside it).
//
// Reports: write_suite_csv emits only fields that are pure functions of the
// manifest and the deterministic results — no wall-clock, no cache/resume
// provenance — so an interrupted-and-resumed run and an uninterrupted run
// produce byte-identical CSVs, and so does an all-cache-hits re-run.
// Provenance and timing live in the JSON jobs section and the metrics
// registry instead.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/table_io.hpp"
#include "suite/manifest.hpp"
#include "suite/result_cache.hpp"
#include "util/retry.hpp"
#include "util/run_control.hpp"
#include "util/thread_pool.hpp"

namespace dalut::suite {

struct SuiteOptions {
  util::ThreadPool* pool = nullptr;  ///< required; shared by jobs and suite
  /// Master control: a deadline or cancel here fans out to every job's
  /// chained per-job control at its next poll boundary.
  util::RunControl* control = nullptr;
  std::string cache_dir;           ///< "" = result cache off
  std::size_t cache_max_entries = 0;  ///< 0 = unbounded
  std::string checkpoint_dir;      ///< "" = per-job checkpoints off
  unsigned checkpoint_every = 2;   ///< bit-steps between job checkpoints
  /// Human-facing progress forwarding, labeled with the job name; throttled
  /// per job by `progress_interval` (at-completion reports always pass).
  std::function<void(const std::string&, const util::RunProgress&)> progress;
  std::chrono::nanoseconds progress_interval = std::chrono::seconds(5);
  /// When non-empty, each job's resolved input truth table (file-based or
  /// generated from a built-in benchmark) is exported here atomically as
  /// "<job-name>.dalut" (text) or "<job-name>.dalutb" (binary container,
  /// per `table_encoding`) — the exact bits the job optimized, re-runnable
  /// standalone via `dalut_opt --table`.
  std::string dump_tables_dir;
  core::TableEncoding table_encoding = core::TableEncoding::kText;
  /// Per-job fault isolation: a job failing with a *retryable* I/O error
  /// (util::errno_retryable) is re-run up to job_retry.max_attempts times
  /// before being quarantined as `failed`; deterministic errors fail on the
  /// first attempt. Sibling jobs always run to completion either way.
  util::RetryPolicy job_retry;
};

/// One delivered progress report, labeled with its job (the suite analogue
/// of telemetry::TrajectoryRow).
struct SuiteTrajectoryRow {
  std::string job;
  double elapsed_seconds = 0.0;  ///< since run_suite started
  std::string stage;
  unsigned round = 0;
  unsigned bit = 0;
  std::size_t steps_done = 0;
  std::size_t steps_total = 0;
  double best_error = 0.0;
};

struct JobOutcome {
  SuiteJob job;
  std::uint64_t key = 0;      ///< result-cache key
  util::RunStatus status = util::RunStatus::kCompleted;
  bool started = false;       ///< false: the master tripped before this job
  bool from_cache = false;    ///< served from the result cache
  bool resumed = false;       ///< restored from a checkpoint
  std::string error;          ///< non-empty: the job failed with this error
  ResultRecord record;        ///< valid when started && error.empty()
};

struct SuiteReport {
  std::vector<JobOutcome> outcomes;  ///< manifest order
  std::vector<SuiteTrajectoryRow> trajectory;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  /// kCompleted unless the master control stopped the suite early.
  util::RunStatus status = util::RunStatus::kCompleted;
  double runtime_seconds = 0.0;
  bool any_failed = false;
};

/// Executes every job of `manifest` on `options.pool`. Never throws for
/// per-job failures (they land in JobOutcome::error); throws
/// std::invalid_argument / std::runtime_error only for suite-level
/// misconfiguration (no pool, unusable cache/checkpoint directory).
SuiteReport run_suite(const Manifest& manifest, const SuiteOptions& options);

/// Deterministic aggregate report: one CSV row per job, manifest order,
/// doubles at exact 17-digit round-trip precision. Contains no wall-clock
/// or provenance fields (see the file comment).
void write_suite_csv(std::ostream& out, const SuiteReport& report);

/// The per-job section of the dalut-metrics-v1 artifact: a JSON array with
/// provenance (cache/resume), timing, and metrics per job. `indent` spaces
/// prefix every line.
void write_suite_jobs_json(std::ostream& out, const SuiteReport& report,
                           int indent = 0);

/// The suite trajectory (job-labeled progress rows) as a JSON array.
void write_suite_trajectory_json(std::ostream& out, const SuiteReport& report,
                                 int indent = 0);

}  // namespace dalut::suite
