#include "suite/result_cache.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "core/format.hpp"
#include "core/serialize_detail.hpp"
#include "obs/event_log.hpp"
#include "util/failpoint.hpp"
#include "util/retry.hpp"
#include "util/telemetry.hpp"

namespace dalut::suite {

namespace {

namespace fs = std::filesystem;

constexpr core::format::FormatSpec kFormat{"dalut-result", 1, 1};
constexpr unsigned kMaxSettings = 4096;

/// Write-only cache counters (docs/observability.md naming scheme).
struct CacheMetrics {
  util::telemetry::Counter hits =
      util::telemetry::Counter::get("suite.cache.hits");
  util::telemetry::Counter misses =
      util::telemetry::Counter::get("suite.cache.misses");
  util::telemetry::Counter stores =
      util::telemetry::Counter::get("suite.cache.stores");
  util::telemetry::Counter evictions =
      util::telemetry::Counter::get("suite.cache.evictions");
  util::telemetry::Counter store_failures =
      util::telemetry::Counter::get("suite.cache.store_failures");
};

CacheMetrics& cache_metrics() {
  static CacheMetrics metrics;
  return metrics;
}

std::string hex64(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace

void write_result(std::ostream& out, const ResultRecord& record) {
  out.precision(17);  // round-trip doubles exactly
  out << core::format::header_line(kFormat) << "\n";
  out << "algorithm " << record.algorithm << "\n";
  out << "inputs " << record.num_inputs << " outputs " << record.num_outputs
      << "\n";
  out << "med " << record.med << "\n";
  out << "mse " << record.mse << "\n";
  out << "error-rate " << record.error_rate << "\n";
  out << "max-ed " << record.max_ed << "\n";
  out << "runtime " << record.runtime_seconds << "\n";
  out << "partitions " << record.partitions_evaluated << "\n";
  out << "stored-bits " << record.stored_bits << "\n";
  std::size_t valid = 0;
  for (const auto& s : record.settings) valid += s.valid() ? 1 : 0;
  out << "settings " << valid << "\n";
  // Decided bits MSB-first, mirroring the config and checkpoint formats.
  for (unsigned k = record.num_outputs; k-- > 0;) {
    if (k < record.settings.size() && record.settings[k].valid()) {
      core::detail::write_setting_record(out, k, record.settings[k]);
    }
  }
  out << "end\n";
}

std::string result_to_string(const ResultRecord& record) {
  std::ostringstream out;
  write_result(out, record);
  return out.str();
}

ResultRecord read_result(std::istream& in) {
  namespace detail = core::detail;
  detail::LineReader reader(in);
  const auto magic_line = reader.next();  // read first: arg order is unspecified
  core::format::check_header_line(magic_line, kFormat, reader.number());

  ResultRecord record;
  record.algorithm = detail::expect_keyed_line(reader, "algorithm");
  if (record.algorithm != "bssa" && record.algorithm != "dalta" &&
      record.algorithm != "round-in" && record.algorithm != "round-out") {
    detail::fail_at(reader.number(),
                    "unknown algorithm '" +
                        detail::token_excerpt(record.algorithm) + "'");
  }
  const auto header = detail::tokens_of(reader.next());
  record.num_inputs = static_cast<unsigned>(detail::parse_unsigned(
      detail::value_after(header, "inputs", reader.number()), reader.number(),
      "inputs", 64));
  record.num_outputs = static_cast<unsigned>(detail::parse_unsigned(
      detail::value_after(header, "outputs", reader.number()), reader.number(),
      "outputs", 64));
  if (record.num_inputs < 2 || record.num_inputs > 26 ||
      record.num_outputs < 1 || record.num_outputs > 26) {
    throw std::invalid_argument("implausible inputs/outputs header");
  }
  record.med = detail::parse_double(detail::expect_keyed_line(reader, "med"),
                                    reader.number(), "med");
  record.mse = detail::parse_double(detail::expect_keyed_line(reader, "mse"),
                                    reader.number(), "mse");
  record.error_rate =
      detail::parse_double(detail::expect_keyed_line(reader, "error-rate"),
                           reader.number(), "error-rate");
  record.max_ed =
      detail::parse_double(detail::expect_keyed_line(reader, "max-ed"),
                           reader.number(), "max-ed");
  record.runtime_seconds =
      detail::parse_double(detail::expect_keyed_line(reader, "runtime"),
                           reader.number(), "runtime");
  record.partitions_evaluated = detail::parse_unsigned(
      detail::expect_keyed_line(reader, "partitions"), reader.number(),
      "partitions");
  record.stored_bits = detail::parse_unsigned(
      detail::expect_keyed_line(reader, "stored-bits"), reader.number(),
      "stored-bits");

  const auto num_settings = detail::parse_unsigned(
      detail::expect_keyed_line(reader, "settings"), reader.number(),
      "settings", std::min(kMaxSettings, record.num_outputs));
  if (num_settings > 0) {
    record.settings.resize(record.num_outputs);
    std::vector<bool> seen(record.num_outputs, false);
    for (std::uint64_t i = 0; i < num_settings; ++i) {
      core::Setting s;
      const unsigned k = detail::read_setting_record(
          reader, record.num_inputs, record.num_outputs, s);
      if (seen[k]) {
        detail::fail_at(reader.number(),
                        "duplicate bit " + std::to_string(k));
      }
      seen[k] = true;
      record.settings[k] = std::move(s);
    }
  }
  if (reader.next() != "end") {
    detail::fail_at(reader.number(), "expected 'end'");
  }
  return record;
}

ResultRecord result_from_string(const std::string& text) {
  std::istringstream in(text);
  return read_result(in);
}

std::uint64_t result_key(const SuiteJob& job,
                         const core::MultiOutputFunction& g) {
  core::format::ParamsDigest d;
  // Folding the versioned header line keeps the key family identical to the
  // pre-framework "dalut-result v1" keys, and spills the cache exactly when
  // the record format itself moves to a new version.
  d.add_string(core::format::header_line(kFormat));
  d.add_string(job.algorithm);
  // Full truth-table content: two functions that differ in any output word
  // can never share a cached result, whatever they are called.
  d.add(g.num_inputs()).add(g.num_outputs());
  // Per-x value() keeps this storage-shape-agnostic: packed views digest
  // identically to an equal dense table.
  for (core::InputWord x = 0; x < g.domain_size(); ++x) d.add(g.value(x));
  d.add_string("uniform");  // input distribution (the only one suites use)

  if (job.algorithm == "round-in" || job.algorithm == "round-out") {
    d.add(job.drop);
    return d.value();
  }
  // Search parameters, normalized per algorithm: fields an algorithm never
  // reads (e.g. beams for DALTA) stay out of its key, so editing them in a
  // manifest does not invalidate unrelated cached rows.
  d.add(job.bound).add(job.rounds).add(job.partitions).add(job.patterns);
  d.add_string(job.metric);
  d.add(job.seed);
  if (job.algorithm == "bssa") {
    d.add(job.beams).add(job.chains).add(job.nd_candidates);
    d.add_string(job.arch);
    d.add_double(job.delta).add_double(job.delta_prime);
  }
  return d.value();
}

ResultCache::ResultCache(std::string dir, std::size_t max_entries)
    : dir_(std::move(dir)), max_entries_(max_entries) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec || !fs::is_directory(dir_)) {
    throw std::runtime_error("cannot create result-cache directory '" + dir_ +
                             "': " + ec.message());
  }
}

std::string ResultCache::path_of(std::uint64_t key) const {
  return dir_ + "/" + hex64(key) + ".result";
}

std::optional<ResultRecord> ResultCache::load(std::uint64_t key) {
  const std::string path = path_of(key);
  std::ifstream in;
  if (util::fp::maybe_fail("cache.load.open") == 0) {
    in.open(path, std::ios::binary);
  }
  if (!in.is_open()) {
    std::lock_guard lock(mutex_);
    ++stats_.misses;
    cache_metrics().misses.add(1);
    return std::nullopt;
  }
  try {
    ResultRecord record = read_result(in);
    // A hit must bump the entry's mtime: eviction under max_entries_ is
    // oldest-mtime-first, so without the touch the *most used* entry reads
    // as oldest and gets evicted first. Best effort — a read-only cache
    // directory still serves hits.
    std::error_code touch_ec;
    fs::last_write_time(path, fs::file_time_type::clock::now(), touch_ec);
    std::lock_guard lock(mutex_);
    ++stats_.hits;
    cache_metrics().hits.add(1);
    obs::EventLog::instance().emit("cache.hit", "", key);
    return record;
  } catch (const std::invalid_argument&) {
    // A corrupt entry (torn disk, format drift) behaves like a miss; remove
    // it so the next store heals the slot.
    std::remove(path.c_str());
    std::lock_guard lock(mutex_);
    ++stats_.misses;
    cache_metrics().misses.add(1);
    return std::nullopt;
  }
}

void ResultCache::store(std::uint64_t key, const ResultRecord& record) {
  std::lock_guard lock(mutex_);
  const std::string path = path_of(key);
  try {
    // Same atomic-publish discipline as checkpoints: tmp + fsync + rename +
    // parent-directory fsync, shared via core/format. Transient failures
    // get a bounded retry before the store is abandoned.
    util::RetryPolicy policy;
    policy.jitter_seed = key;
    policy.run([&] {
      core::format::atomic_write_file(path, result_to_string(record),
                                      "cache.store");
    });
  } catch (const std::exception&) {
    // A cache that cannot persist (full disk, injected fault) degrades to
    // recompute-on-next-run: the job already has its result, so nothing is
    // surfaced. atomic_write_file cleans its tmp on failure; sweep again
    // here in case the failure was above that layer.
    std::remove((path + ".tmp").c_str());
    ++stats_.store_failures;
    cache_metrics().store_failures.add(1);
    obs::EventLog::instance().emit("cache.store_failure", "", key);
    return;
  }
  ++stats_.stores;
  cache_metrics().stores.add(1);
  obs::EventLog::instance().emit("cache.store", "", key);
  trim_locked();
}

void ResultCache::trim_locked() {
  if (max_entries_ == 0) return;
  struct Entry {
    fs::file_time_type mtime;
    fs::path path;
  };
  std::vector<Entry> entries;
  std::error_code ec;
  for (const auto& it : fs::directory_iterator(dir_, ec)) {
    if (it.path().extension() != ".result") continue;
    std::error_code stat_ec;
    const auto mtime = fs::last_write_time(it.path(), stat_ec);
    if (stat_ec) continue;
    entries.push_back({mtime, it.path()});
  }
  if (ec || entries.size() <= max_entries_) return;
  // Oldest first; ties break on the path so eviction order is stable.
  std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
    return a.mtime != b.mtime ? a.mtime < b.mtime : a.path < b.path;
  });
  for (std::size_t i = 0; i + max_entries_ < entries.size(); ++i) {
    std::error_code rm_ec;
    if (fs::remove(entries[i].path, rm_ec) && !rm_ec) {
      ++stats_.evictions;
      cache_metrics().evictions.add(1);
      obs::EventLog::instance().emit("cache.evict");
    }
  }
}

ResultCache::Stats ResultCache::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

}  // namespace dalut::suite
