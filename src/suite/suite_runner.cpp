#include "suite/suite_runner.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <mutex>
#include <optional>
#include <ostream>
#include <stdexcept>
#include <thread>

#include "baseline/round_in.hpp"
#include "baseline/round_out.hpp"
#include "core/bssa.hpp"
#include "core/checkpoint.hpp"
#include "core/dalta.hpp"
#include "core/evaluate.hpp"
#include "core/input_distribution.hpp"
#include "core/table_io.hpp"
#include "func/extended.hpp"
#include "func/registry.hpp"
#include "obs/event_log.hpp"
#include "obs/run_registry.hpp"
#include "util/failpoint.hpp"
#include "util/retry.hpp"
#include "util/run_control.hpp"
#include "util/telemetry.hpp"
#include "util/timer.hpp"
#include "util/trace_writer.hpp"

namespace dalut::suite {

namespace {

/// Write-only suite counters.
struct SuiteMetrics {
  util::telemetry::Counter jobs = util::telemetry::Counter::get("suite.jobs");
  util::telemetry::Counter completed =
      util::telemetry::Counter::get("suite.jobs_completed");
  util::telemetry::Counter failed =
      util::telemetry::Counter::get("suite.jobs_failed");
  util::telemetry::Counter resumed =
      util::telemetry::Counter::get("suite.jobs_resumed");
  util::telemetry::Counter retries =
      util::telemetry::Counter::get("suite.job_retries");
};

SuiteMetrics& suite_metrics() {
  static SuiteMetrics metrics;
  return metrics;
}

core::MultiOutputFunction load_job_function(const SuiteJob& job) {
  if (!job.table.empty()) {
    // Binary-mode open + container auto-detection (text or dalut-table-bin).
    return core::load_function_file(job.table);
  }
  if (auto spec = func::benchmark_by_name(job.benchmark, job.width)) {
    return core::MultiOutputFunction::from_eval(spec->num_inputs,
                                                spec->num_outputs, spec->eval);
  }
  for (const auto& spec : func::extended_suite(job.width)) {
    if (spec.name == job.benchmark) {
      return core::MultiOutputFunction::from_eval(
          spec.num_inputs, spec.num_outputs, spec.eval);
    }
  }
  throw std::invalid_argument("unknown benchmark '" + job.benchmark + "'");
}

core::CostMetric metric_of(const std::string& name) {
  if (name == "mse") return core::CostMetric::kMse;
  if (name == "er") return core::CostMetric::kErrorRate;
  return core::CostMetric::kMed;
}

unsigned effective_bound(const SuiteJob& job, unsigned num_inputs) {
  if (job.bound != 0) return job.bound;
  return std::max(2u, std::min(num_inputs - 1, (9u * num_inputs + 8) / 16));
}

/// Shared mutable state of one run_suite call (trajectory rows arrive from
/// whichever worker carries each job).
struct SuiteState {
  const SuiteOptions* options = nullptr;
  std::chrono::steady_clock::time_point start;
  std::mutex trajectory_mutex;
  std::vector<SuiteTrajectoryRow> trajectory;
};

/// Observes one job's RunControl: records every report into the suite
/// trajectory and forwards to the human-facing callback under the per-job
/// throttle (first and at-completion reports always pass).
struct JobProgressRelay {
  SuiteState* state = nullptr;
  std::string job_name;
  std::chrono::steady_clock::time_point last_forward{};
  bool forwarded = false;

  void install(util::RunControl& control) {
    control.set_progress_callback(
        [this](const util::RunProgress& p) { deliver(p); },
        std::chrono::nanoseconds{0});
  }

  void deliver(const util::RunProgress& p) {
    const auto now = std::chrono::steady_clock::now();
    {
      SuiteTrajectoryRow row;
      row.job = job_name;
      row.elapsed_seconds =
          std::chrono::duration<double>(now - state->start).count();
      row.stage = p.stage;
      row.round = p.round;
      row.bit = p.bit;
      row.steps_done = p.steps_done;
      row.steps_total = p.steps_total;
      row.best_error = p.best_error;
      std::lock_guard lock(state->trajectory_mutex);
      state->trajectory.push_back(std::move(row));
    }
    // Live /runs state rides the same observation-only callback path.
    obs::RunRegistry::instance().job_progress(job_name, p);
    if (!state->options->progress) return;
    const bool final_step =
        p.steps_total != 0 && p.steps_done >= p.steps_total;
    if (forwarded && !final_step &&
        now - last_forward < state->options->progress_interval) {
      return;
    }
    forwarded = true;
    last_forward = now;
    state->options->progress(job_name, p);
  }
};

void run_rounding_job(const SuiteJob& job, const core::MultiOutputFunction& g,
                      const core::InputDistribution& dist,
                      util::ThreadPool* pool, JobOutcome& out) {
  const unsigned n = g.num_inputs();
  const unsigned m = g.num_outputs();
  std::vector<core::OutputWord> values;
  std::uint64_t stored = 0;
  if (job.algorithm == "round-in") {
    if (job.drop < 1 || job.drop >= n) {
      throw std::invalid_argument("round-in drop must be in [1, " +
                                  std::to_string(n - 1) + "]");
    }
    const baseline::RoundIn lut(g, job.drop);
    values = lut.values();
    stored = static_cast<std::uint64_t>(lut.table_entries()) * m;
  } else {
    if (job.drop >= m) {
      throw std::invalid_argument("round-out drop must be < " +
                                  std::to_string(m));
    }
    const baseline::RoundOut lut(g, job.drop);
    values = lut.values();
    stored = static_cast<std::uint64_t>(lut.table_entries()) * lut.stored_bits();
  }
  const auto report = core::error_report(g, values, dist, pool);
  out.record.med = report.med;
  out.record.mse = report.mse;
  out.record.error_rate = report.error_rate;
  out.record.max_ed = report.max_ed;
  out.record.stored_bits = stored;
  out.status = util::RunStatus::kCompleted;
}

void run_search_job(const SuiteJob& job, const core::MultiOutputFunction& g,
                    const core::InputDistribution& dist, SuiteState& state,
                    util::RunControl& control, JobOutcome& out) {
  const SuiteOptions& options = *state.options;
  const unsigned bound = effective_bound(job, g.num_inputs());

  std::string checkpoint_path;
  std::function<void(const core::SearchCheckpoint&)> sink;
  if (!options.checkpoint_dir.empty()) {
    checkpoint_path = options.checkpoint_dir + "/" + job.name + ".ck";
    // Best-effort: a snapshot that cannot be persisted (full disk, injected
    // fault) is dropped — the search must keep running; a crash then merely
    // resumes from an older generation.
    sink = [checkpoint_path](const core::SearchCheckpoint& ck) {
      if (core::save_checkpoint_best_effort(checkpoint_path, ck)) {
        obs::EventLog::instance().emit("checkpoint.save");
      } else {
        obs::EventLog::instance().emit("checkpoint.save_failure");
      }
    };
  }
  std::optional<core::SearchCheckpoint> resume_state;
  if (!checkpoint_path.empty()) {
    // Generation-aware: a torn/corrupt latest checkpoint falls back to
    // "<path>.1"; with no loadable generation the job starts fresh.
    if (auto loaded = core::load_checkpoint_with_fallback(checkpoint_path)) {
      if (loaded->from_previous) {
        obs::EventLog::instance().emit("checkpoint.fallback");
      }
      resume_state = std::move(loaded->checkpoint);
    }
  }

  auto run_once = [&](const core::SearchCheckpoint* resume) {
    if (job.algorithm == "dalta") {
      core::DaltaParams params;
      params.bound_size = bound;
      params.rounds = job.rounds;
      params.partition_limit = job.partitions;
      params.init_patterns = job.patterns;
      params.metric = metric_of(job.metric);
      params.seed = job.seed;
      params.pool = options.pool;
      params.control = &control;
      params.checkpoint_every = sink ? options.checkpoint_every : 0;
      params.checkpoint_sink = sink;
      params.resume = resume;
      return core::run_dalta(g, dist, params);
    }
    core::BssaParams params;
    params.bound_size = bound;
    params.rounds = job.rounds;
    params.beam_width = job.beams;
    params.sa.partition_limit = job.partitions;
    params.sa.init_patterns = job.patterns;
    params.sa.chains = job.chains;
    params.nd_candidates = job.nd_candidates;
    if (job.arch == "bto-normal") {
      params.modes = core::ModePolicy::bto_normal(job.delta);
    } else if (job.arch == "bto-normal-nd") {
      params.modes =
          core::ModePolicy::bto_normal_nd(job.delta, job.delta_prime);
    } else {
      params.modes = core::ModePolicy::normal_only();
    }
    params.metric = metric_of(job.metric);
    params.seed = job.seed;
    params.pool = options.pool;
    params.control = &control;
    params.checkpoint_every = sink ? options.checkpoint_every : 0;
    params.checkpoint_sink = sink;
    params.resume = resume;
    return core::run_bssa(g, dist, params);
  };

  core::DecompositionResult result;
  try {
    result = run_once(resume_state ? &*resume_state : nullptr);
  } catch (const std::invalid_argument&) {
    if (!resume_state) throw;
    // The checkpoint predates a manifest edit (digest mismatch). The edit
    // changed the job, so its old partial state is worthless: discard it
    // and start the job fresh.
    core::remove_checkpoint(checkpoint_path);
    resume_state.reset();
    result = run_once(nullptr);
  }

  out.status = result.status;
  out.resumed = result.resumed;
  out.record.med = result.report.med;
  out.record.mse = result.report.mse;
  out.record.error_rate = result.report.error_rate;
  out.record.max_ed = result.report.max_ed;
  out.record.runtime_seconds = result.runtime_seconds;
  out.record.partitions_evaluated = result.partitions_evaluated;
  out.record.stored_bits = result.realize(g.num_inputs()).stored_entries();
  out.record.settings = result.settings;
  if (result.status == util::RunStatus::kCompleted &&
      !checkpoint_path.empty()) {
    core::remove_checkpoint(checkpoint_path);
  }
}

void run_one_job(const SuiteJob& job, SuiteState& state, ResultCache* cache,
                 JobOutcome& out) {
  // Interned so the span arg outlives the manifest that owns the name.
  const util::telemetry::Span span(
      "suite.job", util::telemetry::trace_intern(job.name));
  const util::WallTimer timer;
  const auto g = load_job_function(job);
  if (const auto& dir = state.options->dump_tables_dir; !dir.empty()) {
    const bool binary =
        state.options->table_encoding == core::TableEncoding::kBinary;
    core::save_function_file(dir + "/" + job.name +
                                 (binary ? ".dalutb" : ".dalut"),
                             g, state.options->table_encoding);
  }
  out.key = result_key(job, g);
  out.record.algorithm = job.algorithm;
  out.record.num_inputs = g.num_inputs();
  out.record.num_outputs = g.num_outputs();

  if (cache != nullptr) {
    if (auto hit = cache->load(out.key)) {
      out.record = std::move(*hit);
      out.from_cache = true;
      out.status = util::RunStatus::kCompleted;
      return;
    }
  }

  const auto dist = core::InputDistribution::uniform(g.num_inputs());
  util::RunControl control;
  control.chain_to(state.options->control);
  JobProgressRelay relay{&state, job.name};
  relay.install(control);

  if (job.algorithm == "round-in" || job.algorithm == "round-out") {
    run_rounding_job(job, g, dist, state.options->pool, out);
  } else {
    run_search_job(job, g, dist, state, control, out);
  }
  if (out.record.runtime_seconds == 0.0) {
    out.record.runtime_seconds = timer.seconds();
  }
  // Only completed results enter the cache: a best-so-far from a stopped
  // run must never masquerade as the converged answer on the next run.
  if (cache != nullptr && out.status == util::RunStatus::kCompleted) {
    cache->store(out.key, out.record);
  }
}

/// One job under full fault isolation: nothing a job throws escapes to
/// parallel_for (one poisoned job must never kill the fleet). Retryable
/// I/O errors get bounded retries per options.job_retry; everything else
/// fails the job immediately — a deterministic error (bad manifest field,
/// corrupt table) returns the same answer on every attempt, so retrying it
/// only burns time.
void run_job_isolated(const SuiteJob& job, SuiteState& state,
                      ResultCache* cache, JobOutcome& out) {
  // Lifecycle events emitted on this thread (including from lower layers:
  // checkpoint sinks, cache probes, failpoint fires) carry the job's name.
  const obs::EventLog::JobScope event_scope(job.name);
  auto& registry = obs::RunRegistry::instance();
  auto& events = obs::EventLog::instance();
  const util::RetryPolicy& policy = state.options->job_retry;
  for (unsigned attempt = 1;; ++attempt) {
    registry.job_started(job.name);
    events.emit("job.start", {}, attempt);
    try {
      if (const int error = util::fp::maybe_fail("suite.job")) {
        throw util::IoError("injected job fault", job.name, error,
                            "suite.job");
      }
      run_one_job(job, state, cache, out);
      suite_metrics().completed.add(
          out.status == util::RunStatus::kCompleted ? 1 : 0);
      suite_metrics().resumed.add(out.resumed ? 1 : 0);
      events.emit("job.finish", {}, attempt);
      registry.job_completed(job.name, out.record.med, out.from_cache,
                             out.resumed);
      return;
    } catch (const util::CancelledError&) {
      // The master control tripped while this job was inside a kernel: the
      // job is stopped, not broken. Report the master's verdict so the CSV
      // says cancelled/deadline, never failed.
      out.status = state.options->control != nullptr
                       ? state.options->control->status()
                       : util::RunStatus::kCancelled;
      events.emit("job.cancelled", {}, attempt);
      registry.job_cancelled(job.name);
      return;
    } catch (const util::IoError& error) {
      if (error.retryable() && attempt < policy.max_attempts) {
        suite_metrics().retries.add(1);
        events.emit("job.retry", error.site(), attempt);
        registry.job_retrying(job.name);
        std::this_thread::sleep_for(policy.backoff_before(attempt + 1));
        // Drop any partial outcome of the failed attempt before rerunning.
        out = JobOutcome{};
        out.job = job;
        out.started = true;
        continue;
      }
      out.error = error.what();
      suite_metrics().failed.add(1);
      events.emit("job.quarantine", error.site(), attempt);
      registry.job_failed(job.name, out.error);
      return;
    } catch (const std::exception& error) {
      out.error = error.what();
      suite_metrics().failed.add(1);
      events.emit("job.quarantine", {}, attempt);
      registry.job_failed(job.name, out.error);
      return;
    } catch (...) {
      out.error = "unknown non-standard exception";
      suite_metrics().failed.add(1);
      events.emit("job.quarantine", {}, attempt);
      registry.job_failed(job.name, out.error);
      return;
    }
  }
}

}  // namespace

SuiteReport run_suite(const Manifest& manifest, const SuiteOptions& options) {
  if (options.pool == nullptr) {
    throw std::invalid_argument("run_suite needs a thread pool");
  }
  std::unique_ptr<ResultCache> cache;
  if (!options.cache_dir.empty()) {
    cache = std::make_unique<ResultCache>(options.cache_dir,
                                          options.cache_max_entries);
  }
  if (!options.checkpoint_dir.empty()) {
    // Reuse the cache's directory bootstrap for the checkpoint directory.
    ResultCache bootstrap(options.checkpoint_dir);
  }
  if (!options.dump_tables_dir.empty()) {
    ResultCache bootstrap(options.dump_tables_dir);
  }

  SuiteState state;
  state.options = &options;
  state.start = std::chrono::steady_clock::now();
  const util::WallTimer timer;

  SuiteReport report;
  report.outcomes.resize(manifest.jobs.size());
  suite_metrics().jobs.add(manifest.jobs.size());
  // Declare every job up front so /runs lists the whole suite (pending rows
  // included) from the first scrape, in manifest order.
  for (const auto& job : manifest.jobs) {
    obs::RunRegistry::instance().declare(job.name, job.algorithm);
  }

  // Jobs shard across the pool; each job body may itself call parallel_for
  // on the same pool (nested calls drain on the job's worker). Per-job
  // failures are retried, then quarantined, never thrown, so one bad job
  // cannot cancel its siblings; only the master control stops the suite
  // early. Outcome slots are indexed by manifest position, so CSV row
  // order stays deterministic whatever the completion order.
  options.pool->parallel_for(
      0, manifest.jobs.size(), [&](std::size_t i) {
        JobOutcome& out = report.outcomes[i];
        out.job = manifest.jobs[i];
        if (options.control != nullptr && options.control->stop_requested()) {
          out.status = options.control->status();
          const obs::EventLog::JobScope scope(manifest.jobs[i].name);
          obs::EventLog::instance().emit("job.skip");
          obs::RunRegistry::instance().job_skipped(manifest.jobs[i].name);
          return;  // never started; reported as skipped
        }
        out.started = true;
        run_job_isolated(manifest.jobs[i], state, cache.get(), out);
      });

  {
    std::lock_guard lock(state.trajectory_mutex);
    report.trajectory = std::move(state.trajectory);
  }
  // Rows arrive in worker completion order; sort by time (ties: job, then
  // step) so the exported trajectory reads chronologically.
  std::stable_sort(report.trajectory.begin(), report.trajectory.end(),
                   [](const SuiteTrajectoryRow& a, const SuiteTrajectoryRow& b) {
                     if (a.elapsed_seconds != b.elapsed_seconds) {
                       return a.elapsed_seconds < b.elapsed_seconds;
                     }
                     if (a.job != b.job) return a.job < b.job;
                     return a.steps_done < b.steps_done;
                   });
  if (cache) {
    const auto stats = cache->stats();
    report.cache_hits = stats.hits;
    report.cache_misses = stats.misses;
  }
  for (const auto& out : report.outcomes) {
    if (!out.error.empty()) report.any_failed = true;
  }
  report.status = options.control != nullptr ? options.control->status()
                                             : util::RunStatus::kCompleted;
  report.runtime_seconds = timer.seconds();
  return report;
}

// ---- Reports -------------------------------------------------------------

namespace {

/// Exact round-trip formatting for the deterministic CSV; doubles from two
/// bit-identical runs must print byte-identically.
std::string csv_double(double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += "\"\"";
    out += c;
  }
  out += "\"";
  return out;
}

const char* status_cell(const JobOutcome& out) {
  if (!out.error.empty()) return "failed";
  if (!out.started) return "skipped";
  return util::to_string(out.status);
}

}  // namespace

void write_suite_csv(std::ostream& out, const SuiteReport& report) {
  out << "job,benchmark,width,inputs,outputs,algorithm,arch,seed,status,"
         "med,mse,error_rate,max_ed,stored_bits,partitions,budget,"
         "within_budget\n";
  for (const auto& o : report.outcomes) {
    const SuiteJob& job = o.job;
    const bool has_result = o.started && o.error.empty();
    const bool search = job.algorithm == "bssa" || job.algorithm == "dalta";
    out << csv_escape(job.name) << ','
        << csv_escape(job.table.empty() ? job.benchmark : job.table) << ','
        << job.width << ',';
    if (has_result) {
      out << o.record.num_inputs << ',' << o.record.num_outputs << ',';
    } else {
      out << ",,";
    }
    out << job.algorithm << ','
        << (job.algorithm == "bssa" ? job.arch
                                    : (job.algorithm == "dalta" ? "dalta"
                                                                : "-"))
        << ',' << job.seed << ',' << status_cell(o) << ',';
    if (has_result) {
      out << csv_double(o.record.med) << ',' << csv_double(o.record.mse)
          << ',' << csv_double(o.record.error_rate) << ','
          << csv_double(o.record.max_ed) << ',' << o.record.stored_bits << ','
          << (search ? std::to_string(o.record.partitions_evaluated) : "-");
    } else {
      out << ",,,,,";
    }
    out << ',';
    if (job.budget > 0.0) {
      out << csv_double(job.budget) << ','
          << (has_result ? (o.record.med <= job.budget ? "yes" : "no") : "");
    } else {
      out << "-,-";
    }
    out << '\n';
  }
}

void write_suite_jobs_json(std::ostream& out, const SuiteReport& report,
                           int indent) {
  using util::telemetry::json_escape;
  using util::telemetry::json_number;
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  out << pad << "[";
  for (std::size_t i = 0; i < report.outcomes.size(); ++i) {
    const auto& o = report.outcomes[i];
    char key_buf[24];
    std::snprintf(key_buf, sizeof key_buf, "0x%016llx",
                  static_cast<unsigned long long>(o.key));
    out << (i == 0 ? "\n" : ",\n") << pad << "  {\"name\": \""
        << json_escape(o.job.name) << "\", \"algorithm\": \""
        << json_escape(o.job.algorithm) << "\", \"key\": \"" << key_buf
        << "\", \"status\": \"" << status_cell(o) << "\", \"from_cache\": "
        << (o.from_cache ? "true" : "false")
        << ", \"resumed\": " << (o.resumed ? "true" : "false")
        << ", \"med\": " << json_number(o.record.med)
        << ", \"stored_bits\": " << o.record.stored_bits
        << ", \"partitions_evaluated\": " << o.record.partitions_evaluated
        << ", \"runtime_seconds\": " << json_number(o.record.runtime_seconds);
    if (!o.error.empty()) {
      out << ", \"error\": \"" << json_escape(o.error) << "\"";
    }
    out << "}";
  }
  out << "\n" << pad << "]";
}

void write_suite_trajectory_json(std::ostream& out, const SuiteReport& report,
                                 int indent) {
  using util::telemetry::json_escape;
  using util::telemetry::json_number;
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  out << pad << "[";
  for (std::size_t i = 0; i < report.trajectory.size(); ++i) {
    const auto& row = report.trajectory[i];
    out << (i == 0 ? "\n" : ",\n") << pad << "  {\"job\": \""
        << json_escape(row.job) << "\", \"elapsed_seconds\": "
        << json_number(row.elapsed_seconds) << ", \"stage\": \""
        << json_escape(row.stage) << "\", \"round\": " << row.round
        << ", \"bit\": " << row.bit << ", \"step\": " << row.steps_done
        << ", \"steps_total\": " << row.steps_total
        << ", \"best_error\": " << json_number(row.best_error) << "}";
  }
  out << "\n" << pad << "]";
}

}  // namespace dalut::suite
