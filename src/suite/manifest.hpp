// Suite manifests (format "dalut-manifest v1"): the job list a dalut_suite
// run executes. One manifest reproduces a whole paper table — every
// benchmark function x {BS-SA, BS-SA-ND, DALTA, rounding} x error budget —
// in a single invocation instead of a shell loop of dalut_opt processes.
//
//   dalut-manifest v1
//   # defaults apply to every job line after them; later defaults override
//   default width=12 rounds=2 partitions=24 patterns=8 chains=2 beams=2
//   job cos-nd benchmark=cos algorithm=bssa arch=bto-normal-nd seed=1
//   job cos-dalta benchmark=cos algorithm=dalta budget=0.5
//   job cos-round algorithm=round-out benchmark=cos drop=6
//   end
//
// Job names must be unique (they key per-job checkpoints and report rows)
// and stay within [A-Za-z0-9._-] so they are safe as file-name stems.
// Parse errors are line-anchored std::invalid_argument, same policy as the
// dalut-config / dalut-checkpoint formats.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace dalut::suite {

/// One optimization (or baseline) job of a suite manifest. Field defaults
/// mirror dalut_opt's CLI defaults, so a one-key job line behaves like a
/// bare dalut_opt call.
struct SuiteJob {
  std::string name;       ///< unique label (report rows, checkpoint stems)
  std::string benchmark = "cos";  ///< built-in function name
  std::string table;      ///< truth-table file (overrides `benchmark`)
  unsigned width = 12;    ///< bit width for built-in benchmarks

  std::string algorithm = "bssa";  ///< bssa | dalta | round-in | round-out
  std::string arch = "dalta";  ///< dalta | bto-normal | bto-normal-nd (bssa)
  unsigned bound = 0;          ///< bound-set size b (0 = 9/16 of width)
  unsigned rounds = 3;         ///< optimization rounds R
  unsigned partitions = 60;    ///< partition budget P
  unsigned patterns = 12;      ///< initial pattern vectors Z
  unsigned beams = 3;          ///< beam width (bssa)
  unsigned chains = 3;         ///< SA chains (bssa)
  unsigned nd_candidates = 4;  ///< ND candidate partitions (bssa)
  std::string metric = "med";  ///< med | mse | er
  double delta = 0.01;         ///< mode factor delta
  double delta_prime = 0.1;    ///< mode factor delta'
  std::uint64_t seed = 1;
  unsigned drop = 1;           ///< dropped bits (round-in / round-out)

  /// Optional MED budget for the report's within-budget column (0 = none).
  /// Purely descriptive: it does not steer the search, so it is not part of
  /// the result-cache key.
  double budget = 0.0;
};

struct Manifest {
  std::vector<SuiteJob> jobs;  ///< manifest order == report order
};

/// Parses a manifest; throws std::invalid_argument with a line-anchored
/// message on malformed input.
Manifest read_manifest(std::istream& in);
Manifest manifest_from_string(const std::string& text);

/// Loads a manifest file; std::runtime_error if unreadable.
Manifest load_manifest(const std::string& path);

}  // namespace dalut::suite
