#include "func/registry.hpp"

#include <array>
#include <stdexcept>

#include "func/axbench.hpp"
#include "func/continuous.hpp"

namespace dalut::func {

namespace {

using Factory = FunctionSpec (*)(unsigned width);

struct Entry {
  const char* name;
  Factory make;
  bool needs_even_width;
};

constexpr std::array<Entry, 10> kEntries{{
    {"cos", make_cos, false},
    {"tan", make_tan, false},
    {"exp", make_exp, false},
    {"ln", make_ln, false},
    {"erf", make_erf, false},
    {"denoise", make_denoise, false},
    {"brentkung", make_brent_kung, true},
    {"forwardk2j", make_forwardk2j, true},
    {"inversek2j", make_inversek2j, true},
    {"multiplier", make_multiplier, true},
}};

}  // namespace

std::vector<FunctionSpec> benchmark_suite(unsigned width) {
  if (width % 2 != 0 || width < 4) {
    throw std::invalid_argument(
        "the full suite needs an even width >= 4 (two stitched operands)");
  }
  std::vector<FunctionSpec> suite;
  suite.reserve(kEntries.size());
  for (const auto& entry : kEntries) suite.push_back(entry.make(width));
  return suite;
}

std::optional<FunctionSpec> benchmark_by_name(const std::string& name,
                                              unsigned width) {
  for (const auto& entry : kEntries) {
    if (name != entry.name) continue;
    if (entry.needs_even_width && (width % 2 != 0 || width < 4)) {
      throw std::invalid_argument("benchmark '" + name +
                                  "' needs an even width >= 4");
    }
    return entry.make(width);
  }
  return std::nullopt;
}

}  // namespace dalut::func
