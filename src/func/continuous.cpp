#include "func/continuous.hpp"

#include <cmath>
#include <numbers>

namespace dalut::func {

namespace {
constexpr double kPi = std::numbers::pi;
}

FunctionSpec make_cos(unsigned width) {
  return quantized_real_function("cos", width, width, 0.0, kPi / 2, 0.0, 1.0,
                                 [](double x) { return std::cos(x); });
}

FunctionSpec make_tan(unsigned width) {
  // tan(2*pi/5) = 3.0776...; Table I rounds the range to [0, 3.08].
  return quantized_real_function("tan", width, width, 0.0, 2 * kPi / 5, 0.0,
                                 std::tan(2 * kPi / 5),
                                 [](double x) { return std::tan(x); });
}

FunctionSpec make_exp(unsigned width) {
  // Table I quantizes the output over [0, 20.09] (not [1, 20.09]).
  return quantized_real_function("exp", width, width, 0.0, 3.0, 0.0,
                                 std::exp(3.0),
                                 [](double x) { return std::exp(x); });
}

FunctionSpec make_ln(unsigned width) {
  return quantized_real_function("ln", width, width, 1.0, 10.0, 0.0,
                                 std::log(10.0),
                                 [](double x) { return std::log(x); });
}

FunctionSpec make_erf(unsigned width) {
  return quantized_real_function("erf", width, width, 0.0, 3.0, 0.0, 1.0,
                                 [](double x) { return std::erf(x); });
}

FunctionSpec make_denoise(unsigned width) {
  // Peak value x*exp(-x^2/3.57) at x = sqrt(3.57/2) is ~0.8103, matching
  // Table I's reported range [0, 0.81].
  const double peak = std::sqrt(3.57 / 2.0) * std::exp(-0.5);
  return quantized_real_function(
      "denoise", width, width, 0.0, 3.0, 0.0, peak,
      [](double x) { return x * std::exp(-x * x / 3.57); });
}

}  // namespace dalut::func
