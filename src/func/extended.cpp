#include "func/extended.hpp"

#include <cmath>

namespace dalut::func {

FunctionSpec make_sqrt(unsigned width) {
  return quantized_real_function("sqrt", width, width, 0.0, 4.0, 0.0, 2.0,
                                 [](double x) { return std::sqrt(x); });
}

FunctionSpec make_reciprocal(unsigned width) {
  return quantized_real_function("reciprocal", width, width, 1.0, 8.0, 0.0,
                                 1.0, [](double x) { return 1.0 / x; });
}

FunctionSpec make_sigmoid(unsigned width) {
  return quantized_real_function(
      "sigmoid", width, width, -6.0, 6.0, 0.0, 1.0,
      [](double x) { return 1.0 / (1.0 + std::exp(-x)); });
}

FunctionSpec make_gaussian(unsigned width) {
  return quantized_real_function(
      "gaussian", width, width, -4.0, 4.0, 0.0, 1.0,
      [](double x) { return std::exp(-0.5 * x * x); });
}

FunctionSpec make_atan(unsigned width) {
  return quantized_real_function("atan", width, width, 0.0, 8.0, 0.0,
                                 std::atan(8.0),
                                 [](double x) { return std::atan(x); });
}

FunctionSpec make_log2(unsigned width) {
  return quantized_real_function("log2", width, width, 1.0, 16.0, 0.0, 4.0,
                                 [](double x) { return std::log2(x); });
}

std::vector<FunctionSpec> extended_suite(unsigned width) {
  return {make_sqrt(width),     make_reciprocal(width),
          make_sigmoid(width),  make_gaussian(width),
          make_atan(width),     make_log2(width)};
}

}  // namespace dalut::func
