#include "func/trace.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

namespace dalut::func {

std::vector<std::uint32_t> generate_trace(TraceKind kind, std::size_t count,
                                          unsigned num_inputs,
                                          util::Rng& rng) {
  const std::uint64_t domain = std::uint64_t{1} << num_inputs;
  const std::uint32_t mask = static_cast<std::uint32_t>(domain - 1);
  std::vector<std::uint32_t> trace(count);

  switch (kind) {
    case TraceKind::kUniform:
      for (auto& x : trace) {
        x = static_cast<std::uint32_t>(rng.next_below(domain));
      }
      break;
    case TraceKind::kGaussian: {
      const double mu = static_cast<double>(domain) / 2.0;
      const double sigma = static_cast<double>(domain) / 8.0;
      for (auto& x : trace) {
        // Box-Muller; clamp into the domain.
        const double u1 = std::max(rng.next_double(), 1e-12);
        const double u2 = rng.next_double();
        const double z =
            std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307 * u2);
        const double value = std::clamp(mu + sigma * z, 0.0,
                                        static_cast<double>(domain - 1));
        x = static_cast<std::uint32_t>(value);
      }
      break;
    }
    case TraceKind::kSequential: {
      const auto start = static_cast<std::uint32_t>(rng.next_below(domain));
      for (std::size_t i = 0; i < count; ++i) {
        trace[i] = (start + static_cast<std::uint32_t>(i)) & mask;
      }
      break;
    }
    case TraceKind::kRandomWalk: {
      std::uint32_t current =
          static_cast<std::uint32_t>(rng.next_below(domain));
      for (auto& x : trace) {
        // Flip one or two random bits per step.
        current ^= std::uint32_t{1} << rng.next_below(num_inputs);
        if (rng.next_bool(0.3)) {
          current ^= std::uint32_t{1} << rng.next_below(num_inputs);
        }
        x = current & mask;
      }
      break;
    }
  }
  return trace;
}

double trace_activity(const std::vector<std::uint32_t>& trace) {
  if (trace.size() < 2) return 0.0;
  std::uint64_t toggles = 0;
  for (std::size_t i = 1; i < trace.size(); ++i) {
    toggles += std::popcount(trace[i] ^ trace[i - 1]);
  }
  return static_cast<double>(toggles) /
         static_cast<double>(trace.size() - 1);
}

}  // namespace dalut::func
