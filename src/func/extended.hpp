// Extended function suite: common hardware-accelerated kernels beyond the
// paper's Table I, using the same quantization conventions. Useful for
// users evaluating the library on their own workloads and exercised by the
// bound-size and distribution studies.
#pragma once

#include <vector>

#include "func/function_spec.hpp"

namespace dalut::func {

FunctionSpec make_sqrt(unsigned width = 16);        ///< sqrt(x),  x in [0, 4]
FunctionSpec make_reciprocal(unsigned width = 16);  ///< 1/x,      x in [1, 8]
FunctionSpec make_sigmoid(unsigned width = 16);     ///< logistic, x in [-6, 6]
FunctionSpec make_gaussian(unsigned width = 16);    ///< e^(-x^2/2), [-4, 4]
FunctionSpec make_atan(unsigned width = 16);        ///< atan(x),  x in [0, 8]
FunctionSpec make_log2(unsigned width = 16);        ///< log2(x),  x in [1, 16]

/// All six, in the order above.
std::vector<FunctionSpec> extended_suite(unsigned width = 16);

}  // namespace dalut::func
