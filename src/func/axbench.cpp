#include "func/axbench.hpp"

#include <algorithm>
#include <stdexcept>
#include <cmath>
#include <numbers>

namespace dalut::func {

namespace {

constexpr double kPi = std::numbers::pi;

struct OperandSplit {
  unsigned half;
  std::uint32_t mask;
};

OperandSplit split(unsigned width) {
  if (width % 2 != 0 || width < 4) {
    throw std::invalid_argument(
        "two-operand benchmarks need an even width >= 4");
  }
  const unsigned half = width / 2;
  return {half, (1u << half) - 1};
}

/// Quantizes y (clamped to [lo, hi]) onto `bits`-bit codes.
std::uint32_t quantize(double y, double lo, double hi, unsigned bits) {
  const double t = std::clamp((y - lo) / (hi - lo), 0.0, 1.0);
  return static_cast<std::uint32_t>(
      std::lround(t * static_cast<double>((1u << bits) - 1)));
}

}  // namespace

FunctionSpec make_brent_kung(unsigned width) {
  const auto [half, mask] = split(width);
  FunctionSpec spec;
  spec.name = "brentkung";
  spec.num_inputs = width;
  spec.num_outputs = half + 1;
  spec.continuous = false;
  spec.domain = "two unsigned operands";
  spec.range = "sum with carry";
  spec.eval = [half = half, mask = mask](std::uint32_t code) {
    const std::uint32_t a = code & mask;
    const std::uint32_t b = (code >> half) & mask;
    return a + b;  // (half+1)-bit result
  };
  return spec;
}

FunctionSpec make_forwardk2j(unsigned width) {
  const auto [half, mask] = split(width);
  FunctionSpec spec;
  spec.name = "forwardk2j";
  spec.num_inputs = width;
  spec.num_outputs = width;
  spec.continuous = false;
  spec.domain = "theta1, theta2 in [0, pi/2]";
  spec.range = "effector x in [-1, 1]";
  spec.eval = [half = half, mask = mask, width](std::uint32_t code) {
    const double levels = static_cast<double>(mask);
    const double theta1 =
        (kPi / 2) * static_cast<double>(code & mask) / levels;
    const double theta2 =
        (kPi / 2) * static_cast<double>((code >> half) & mask) / levels;
    const double x = kLinkLength1 * std::cos(theta1) +
                     kLinkLength2 * std::cos(theta1 + theta2);
    return quantize(x, -1.0, 1.0, width);
  };
  return spec;
}

FunctionSpec make_inversek2j(unsigned width) {
  const auto [half, mask] = split(width);
  FunctionSpec spec;
  spec.name = "inversek2j";
  spec.num_inputs = width;
  spec.num_outputs = width;
  spec.continuous = false;
  spec.domain = "effector (x, y) in [0, 1]^2";
  spec.range = "theta2 in [0, pi] (0 where unreachable)";
  spec.eval = [half = half, mask = mask, width](std::uint32_t code) {
    const double levels = static_cast<double>(mask);
    const double x = static_cast<double>(code & mask) / levels;
    const double y = static_cast<double>((code >> half) & mask) / levels;
    const double c = (x * x + y * y - kLinkLength1 * kLinkLength1 -
                      kLinkLength2 * kLinkLength2) /
                     (2 * kLinkLength1 * kLinkLength2);
    // Unreachable points (|c| > 1) saturate, which makes the output
    // discontinuous across the workspace boundary - the reason this
    // benchmark defeats Taylor-based approximate LUTs.
    const double theta2 = std::acos(std::clamp(c, -1.0, 1.0));
    return quantize(theta2, 0.0, kPi, width);
  };
  return spec;
}

FunctionSpec make_multiplier(unsigned width) {
  const auto [half, mask] = split(width);
  FunctionSpec spec;
  spec.name = "multiplier";
  spec.num_inputs = width;
  spec.num_outputs = width;
  spec.continuous = false;
  spec.domain = "two unsigned operands";
  spec.range = "product";
  spec.eval = [half = half, mask = mask](std::uint32_t code) {
    const std::uint32_t a = code & mask;
    const std::uint32_t b = (code >> half) & mask;
    return a * b;
  };
  return spec;
}

}  // namespace dalut::func
