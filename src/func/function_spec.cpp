#include "func/function_spec.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace dalut::func {

namespace {
std::string interval(double lo, double hi) {
  std::ostringstream out;
  out << "[" << lo << ", " << hi << "]";
  return out.str();
}
}  // namespace

FunctionSpec quantized_real_function(std::string name, unsigned n, unsigned m,
                                     double lo, double hi, double rlo,
                                     double rhi,
                                     std::function<double(double)> f) {
  FunctionSpec spec;
  spec.name = std::move(name);
  spec.num_inputs = n;
  spec.num_outputs = m;
  spec.continuous = true;
  spec.domain = interval(lo, hi);
  spec.range = interval(rlo, rhi);
  const double in_levels = static_cast<double>((1u << n) - 1);
  const double out_levels = static_cast<double>((1u << m) - 1);
  spec.eval = [=, f = std::move(f)](std::uint32_t code) -> std::uint32_t {
    const double x = lo + (hi - lo) * static_cast<double>(code) / in_levels;
    const double y = f(x);
    const double t = (y - rlo) / (rhi - rlo);
    const double q = std::clamp(t, 0.0, 1.0) * out_levels;
    return static_cast<std::uint32_t>(std::lround(q));
  };
  return spec;
}

}  // namespace dalut::func
