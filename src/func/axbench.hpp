// The four non-continuous benchmarks of paper Table I, reimplemented from
// their AxBench definitions. Each stitches two (width/2)-bit operands into a
// `width`-bit input word: operand a = low half, operand b = high half.
//
//  * Brent-Kung : (width/2)-bit + (width/2)-bit adder, (width/2 + 1) outputs.
//  * Forwardk2j : 2-joint forward kinematics, x-coordinate of the effector.
//  * Inversek2j : 2-joint inverse kinematics, elbow angle theta2.
//  * Multiplier : exact (width/2) x (width/2) unsigned multiplier.
//
// With width = 16 these match the paper: 16 inputs, and 9/16/16/16 outputs.
#pragma once

#include "func/function_spec.hpp"

namespace dalut::func {

/// Arm-segment lengths used by the kinematics benchmarks (AxBench uses a
/// two-link arm; we fix unit-sum links so the workspace is [0, 1]-normalized).
inline constexpr double kLinkLength1 = 0.5;
inline constexpr double kLinkLength2 = 0.5;

FunctionSpec make_brent_kung(unsigned width = 16);
FunctionSpec make_forwardk2j(unsigned width = 16);
FunctionSpec make_inversek2j(unsigned width = 16);
FunctionSpec make_multiplier(unsigned width = 16);

}  // namespace dalut::func
