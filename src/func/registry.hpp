// Registry assembling the paper's full benchmark suite (Table I).
#pragma once

#include <optional>
#include <vector>

#include "func/function_spec.hpp"

namespace dalut::func {

/// The ten benchmarks of Table I in paper order: cos, tan, exp, ln, erf,
/// denoise, brentkung, forwardk2j, inversek2j, multiplier. `width` is the
/// input bit-width (16 reproduces the paper; smaller even widths give scaled
/// versions for fast runs and tests). Throws std::invalid_argument for odd
/// widths (the non-continuous functions stitch two equal operands).
std::vector<FunctionSpec> benchmark_suite(unsigned width = 16);

/// Looks a benchmark up by name (as listed above); empty if unknown.
/// Continuous benchmarks accept any width >= 2; the two-operand ones throw
/// for odd widths.
std::optional<FunctionSpec> benchmark_by_name(const std::string& name,
                                              unsigned width = 16);

}  // namespace dalut::func
