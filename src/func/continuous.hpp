// The six continuous benchmarks of paper Table I (originating from the
// ApproxLUT paper): cos, tan, exp, ln, erf, denoise. Domains and ranges
// follow Table I; inputs and outputs are quantized to `width` bits each
// (16 in the paper; smaller widths supported for scaled-down experiments).
#pragma once

#include "func/function_spec.hpp"

namespace dalut::func {

FunctionSpec make_cos(unsigned width = 16);      ///< cos(x),  x in [0, pi/2]
FunctionSpec make_tan(unsigned width = 16);      ///< tan(x),  x in [0, 2*pi/5]
FunctionSpec make_exp(unsigned width = 16);      ///< exp(x),  x in [0, 3]
FunctionSpec make_ln(unsigned width = 16);       ///< ln(x),   x in [1, 10]
FunctionSpec make_erf(unsigned width = 16);      ///< erf(x),  x in [0, 3]
/// Image-denoising kernel, x in [0, 3], range [0, 0.81]. The exact analytic
/// form used by ApproxLUT is not published; we use the Gaussian-weighted
/// kernel g(x) = x * exp(-x^2 / 3.57), which matches Table I's domain/range
/// ([0,3] -> [0, ~0.81]) and the unimodal, non-linear shape of a
/// range-filter denoising kernel (see DESIGN.md substitution notes).
FunctionSpec make_denoise(unsigned width = 16);

}  // namespace dalut::func
