// Input-trace generation for energy measurement.
//
// The simulator's data-dependent energy term reacts to how inputs toggle
// between consecutive reads; real workloads differ from uniform-random
// addressing (the paper's 1024-read measurement). These generators cover
// the common shapes: uniform, value-clustered (Gaussian), sequential
// sweeps, and low-activity random walks.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace dalut::func {

enum class TraceKind {
  kUniform,     ///< independent uniform addresses (paper's measurement)
  kGaussian,    ///< clustered around mid-range (sensor-like)
  kSequential,  ///< monotone ramp (streaming/sweep access)
  kRandomWalk,  ///< each read flips a few random bits (low activity)
};

/// `count` input codes over `num_inputs` bits.
std::vector<std::uint32_t> generate_trace(TraceKind kind, std::size_t count,
                                          unsigned num_inputs,
                                          util::Rng& rng);

/// Mean input-bit toggles between consecutive trace entries.
double trace_activity(const std::vector<std::uint32_t>& trace);

}  // namespace dalut::func
