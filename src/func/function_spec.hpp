// Benchmark function specifications (paper Table I).
//
// A FunctionSpec describes an n-input m-output Boolean function as a mapping
// from input code to output code, plus metadata used by the experiment
// harnesses. Continuous functions quantize a real function over a domain;
// non-continuous ones stitch two fixed-width operands into the input word.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace dalut::func {

struct FunctionSpec {
  std::string name;
  unsigned num_inputs = 0;   ///< n: input bits
  unsigned num_outputs = 0;  ///< m: output bits
  bool continuous = false;
  std::string domain;  ///< human-readable domain description
  std::string range;   ///< human-readable range description
  /// Maps an n-bit input code to an m-bit output code.
  std::function<std::uint32_t(std::uint32_t)> eval;
};

/// Quantizes real input/output: input code i in [0, 2^n) maps linearly onto
/// [lo, hi]; the real result f(x) is quantized linearly onto [rlo, rhi] with
/// 2^m levels (clamped). This is the standard fixed-point LUT discretization
/// the paper (and ApproxLUT before it) uses for the continuous benchmarks.
FunctionSpec quantized_real_function(std::string name, unsigned n, unsigned m,
                                     double lo, double hi, double rlo,
                                     double rhi,
                                     std::function<double(double)> f);

}  // namespace dalut::func
