// Google-benchmark micro benchmarks for the core kernels: cost-array
// construction, cost-matrix scatter, OptForPart, the SA search, and the
// realized-LUT read path. These are the hot loops of both algorithms.
#include <benchmark/benchmark.h>

#include <optional>

#include "core/bit_cost.hpp"
#include "core/bssa.hpp"
#include "core/dalta.hpp"
#include "core/eval_workspace.hpp"
#include "core/partition_opt.hpp"
#include "core/sa_search.hpp"
#include "func/registry.hpp"
#include "hw/simulator.hpp"
#include "util/telemetry.hpp"
#include "util/trace_writer.hpp"

namespace {

using namespace dalut;

core::MultiOutputFunction make_cos(unsigned width) {
  const auto spec = *func::benchmark_by_name("cos", width);
  return core::MultiOutputFunction::from_eval(spec.num_inputs,
                                              spec.num_outputs, spec.eval);
}

void BM_BuildBitCosts(benchmark::State& state) {
  const auto width = static_cast<unsigned>(state.range(0));
  const auto g = make_cos(width);
  const auto dist = core::InputDistribution::uniform(width);
  const auto cache = g.values();
  for (auto _ : state) {
    auto costs = core::build_bit_costs(g, cache, width - 1,
                                       core::LsbModel::kPredictive, dist);
    benchmark::DoNotOptimize(costs.c0.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(g.domain_size()));
}
BENCHMARK(BM_BuildBitCosts)->Arg(10)->Arg(12)->Arg(14);

void BM_CostMatrixScatter(benchmark::State& state) {
  const auto width = static_cast<unsigned>(state.range(0));
  const auto g = make_cos(width);
  const auto dist = core::InputDistribution::uniform(width);
  const auto costs = core::build_bit_costs(
      g, g.values(), width - 1, core::LsbModel::kPredictive, dist);
  util::Rng rng(1);
  const auto p = core::Partition::random(width, (9 * width + 8) / 16, rng);
  for (auto _ : state) {
    auto matrix = core::CostMatrix::build(p, costs.c0, costs.c1);
    benchmark::DoNotOptimize(matrix.cost0.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(g.domain_size()));
}
BENCHMARK(BM_CostMatrixScatter)->Arg(10)->Arg(12)->Arg(14)->Arg(16);

void BM_CostMatrixGather(benchmark::State& state) {
  // The EvalWorkspace replacement for BM_CostMatrixScatter: interleaved
  // source + thread-local scratch, memo disabled so every iteration pays
  // the full gather.
  const auto width = static_cast<unsigned>(state.range(0));
  const auto g = make_cos(width);
  const auto dist = core::InputDistribution::uniform(width);
  const auto costs = core::build_bit_costs(
      g, g.values(), width - 1, core::LsbModel::kPredictive, dist);
  util::Rng rng(1);
  const auto p = core::Partition::random(width, (9 * width + 8) / 16, rng);
  auto& workspace = core::EvalWorkspace::local();
  core::set_eval_cache_capacity(0);
  for (auto _ : state) {
    const core::MatrixRef matrix = workspace.full_matrix(p, costs);
    benchmark::DoNotOptimize(matrix.get().cells.data());
  }
  core::set_eval_cache_capacity(std::size_t{64} << 20);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(g.domain_size()));
}
BENCHMARK(BM_CostMatrixGather)->Arg(10)->Arg(12)->Arg(14)->Arg(16);

void BM_CostMatrixGatherCached(benchmark::State& state) {
  // Memo hit path: the same (epoch, bound mask) key every iteration.
  const auto width = static_cast<unsigned>(state.range(0));
  const auto g = make_cos(width);
  const auto dist = core::InputDistribution::uniform(width);
  const auto costs = core::build_bit_costs(
      g, g.values(), width - 1, core::LsbModel::kPredictive, dist);
  util::Rng rng(1);
  const auto p = core::Partition::random(width, (9 * width + 8) / 16, rng);
  auto& workspace = core::EvalWorkspace::local();
  core::reset_eval_cache();
  for (auto _ : state) {
    const core::MatrixRef matrix = workspace.full_matrix(p, costs);
    benchmark::DoNotOptimize(matrix.get().cells.data());
  }
  const auto stats = core::eval_cache_stats();
  state.counters["hit_rate"] =
      stats.hits + stats.misses == 0
          ? 0.0
          : static_cast<double>(stats.hits) /
                static_cast<double>(stats.hits + stats.misses);
  core::reset_eval_cache();
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(g.domain_size()));
}
BENCHMARK(BM_CostMatrixGatherCached)->Arg(12)->Arg(14)->Arg(16);

void BM_OptForPart(benchmark::State& state) {
  const auto width = static_cast<unsigned>(state.range(0));
  const auto g = make_cos(width);
  const auto dist = core::InputDistribution::uniform(width);
  const auto costs = core::build_bit_costs(
      g, g.values(), width - 1, core::LsbModel::kPredictive, dist);
  util::Rng rng(2);
  const auto p = core::Partition::random(width, (9 * width + 8) / 16, rng);
  const auto matrix = core::CostMatrix::build(p, costs.c0, costs.c1);
  for (auto _ : state) {
    auto result = core::opt_for_part(matrix, {30, 64}, rng);
    benchmark::DoNotOptimize(result.error);
  }
}
BENCHMARK(BM_OptForPart)->Arg(10)->Arg(12)->Arg(14);

void BM_OptForPartWorkspace(benchmark::State& state) {
  // The restart-blocked EvalWorkspace kernel on the same problem as
  // BM_OptForPart (bit-identical results, ~Z x less matrix traffic).
  const auto width = static_cast<unsigned>(state.range(0));
  const auto g = make_cos(width);
  const auto dist = core::InputDistribution::uniform(width);
  const auto costs = core::build_bit_costs(
      g, g.values(), width - 1, core::LsbModel::kPredictive, dist);
  util::Rng rng(2);
  const auto p = core::Partition::random(width, (9 * width + 8) / 16, rng);
  auto& workspace = core::EvalWorkspace::local();
  const core::MatrixRef matrix = workspace.full_matrix(p, costs);
  for (auto _ : state) {
    auto result = workspace.opt_for_part(matrix, {30, 64}, rng);
    benchmark::DoNotOptimize(result.error);
  }
}
BENCHMARK(BM_OptForPartWorkspace)->Arg(10)->Arg(12)->Arg(14);

void BM_OptForPartBto(benchmark::State& state) {
  const auto width = static_cast<unsigned>(state.range(0));
  const auto g = make_cos(width);
  const auto dist = core::InputDistribution::uniform(width);
  const auto costs = core::build_bit_costs(
      g, g.values(), width - 1, core::LsbModel::kPredictive, dist);
  util::Rng rng(3);
  const auto p = core::Partition::random(width, (9 * width + 8) / 16, rng);
  const auto matrix = core::CostMatrix::build(p, costs.c0, costs.c1);
  for (auto _ : state) {
    auto result = core::opt_for_part_bto(matrix);
    benchmark::DoNotOptimize(result.error);
  }
}
BENCHMARK(BM_OptForPartBto)->Arg(10)->Arg(12);

void BM_FindBestSettings(benchmark::State& state) {
  const unsigned width = 10;
  const auto g = make_cos(width);
  const auto dist = core::InputDistribution::uniform(width);
  const auto costs = core::build_bit_costs(
      g, g.values(), width - 1, core::LsbModel::kPredictive, dist);
  core::SaParams params;
  params.partition_limit = static_cast<unsigned>(state.range(0));
  params.init_patterns = 8;
  params.chains = 3;
  util::Rng rng(4);
  for (auto _ : state) {
    auto result = core::find_best_settings(width, 6, costs.c0, costs.c1, 3,
                                           params, rng, nullptr, false);
    benchmark::DoNotOptimize(result.top.data());
  }
}
BENCHMARK(BM_FindBestSettings)->Arg(10)->Arg(40);

void BM_TelemetryOverhead(benchmark::State& state) {
  // The instrumented SA hot path — find_best_settings drives OptForPart per
  // candidate and carries the sa.* counters and sweep spans — with telemetry
  // off (Arg 0) vs. metrics + tracing on (Arg 1). The delta between the two
  // rows is the telemetry tax; the acceptance bound is < 2%
  // (docs/observability.md).
  const unsigned width = 10;
  const auto g = make_cos(width);
  const auto dist = core::InputDistribution::uniform(width);
  const auto costs = core::build_bit_costs(
      g, g.values(), width - 1, core::LsbModel::kPredictive, dist);
  core::SaParams params;
  params.partition_limit = 20;
  params.init_patterns = 8;
  params.chains = 3;
  const bool enabled = state.range(0) != 0;
  util::telemetry::set_metrics_enabled(enabled);
  util::telemetry::set_tracing_enabled(enabled);
  util::Rng rng(4);
  for (auto _ : state) {
    auto result = core::find_best_settings(width, 6, costs.c0, costs.c1, 3,
                                           params, rng, nullptr, false);
    benchmark::DoNotOptimize(result.top.data());
  }
  util::telemetry::set_metrics_enabled(false);
  util::telemetry::set_tracing_enabled(false);
  util::telemetry::reset_metrics_for_test();
  util::telemetry::reset_tracing_for_test();
}
BENCHMARK(BM_TelemetryOverhead)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

// ---- Parallel scaling: Arg is the pool worker count (0 = no pool). ----
// Run with several Args to measure speedup; results are bit-identical
// across worker counts by the determinism contract (docs/parallelism.md).

void BM_BuildBitCostsParallel(benchmark::State& state) {
  const unsigned width = 16;
  const auto g = make_cos(width);
  const auto dist = core::InputDistribution::uniform(width);
  const auto cache = g.values();
  const auto workers = static_cast<std::size_t>(state.range(0));
  std::optional<util::ThreadPool> pool;
  if (workers > 0) pool.emplace(workers);
  util::ThreadPool* pool_ptr = pool.has_value() ? &*pool : nullptr;
  for (auto _ : state) {
    auto costs =
        core::build_bit_costs(g, cache, width - 1, core::LsbModel::kPredictive,
                              dist, core::CostMetric::kMed, pool_ptr);
    benchmark::DoNotOptimize(costs.c0.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(g.domain_size()));
}
BENCHMARK(BM_BuildBitCostsParallel)
    ->Arg(0)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime();

void BM_FindBestSettingsParallel(benchmark::State& state) {
  // The acceptance benchmark of the parallel BS-SA rework: a 16-input
  // search whose cross-chain sweep batches feed the pool.
  const unsigned width = 16;
  const auto g = make_cos(width);
  const auto dist = core::InputDistribution::uniform(width);
  const auto workers = static_cast<std::size_t>(state.range(0));
  std::optional<util::ThreadPool> pool;
  if (workers > 0) pool.emplace(workers);
  util::ThreadPool* pool_ptr = pool.has_value() ? &*pool : nullptr;
  const auto costs =
      core::build_bit_costs(g, g.values(), width - 1,
                            core::LsbModel::kPredictive, dist,
                            core::CostMetric::kMed, pool_ptr);
  core::SaParams params;
  params.partition_limit = 40;
  params.init_patterns = 6;
  params.chains = 10;
  for (auto _ : state) {
    util::Rng rng(4);
    auto result = core::find_best_settings(width, 9, costs.c0, costs.c1, 3,
                                           params, rng, pool_ptr, false);
    benchmark::DoNotOptimize(result.top.data());
  }
  state.SetItemsProcessed(state.iterations() * params.partition_limit);
}
BENCHMARK(BM_FindBestSettingsParallel)
    ->Arg(0)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_NonDisjointOptimize(benchmark::State& state) {
  const unsigned width = 10;
  const auto g = make_cos(width);
  const auto dist = core::InputDistribution::uniform(width);
  const auto costs = core::build_bit_costs(
      g, g.values(), width - 1, core::LsbModel::kCurrentApprox, dist);
  util::Rng rng(5);
  const auto p = core::Partition::random(width, 6, rng);
  for (auto _ : state) {
    auto result =
        core::optimize_nondisjoint(p, costs.c0, costs.c1, {8, 64}, rng);
    benchmark::DoNotOptimize(result.error);
  }
}
BENCHMARK(BM_NonDisjointOptimize);

void BM_ApproxLutRead(benchmark::State& state) {
  const unsigned width = 10;
  const auto g = make_cos(width);
  const auto dist = core::InputDistribution::uniform(width);
  core::BssaParams params;
  params.bound_size = 6;
  params.rounds = 2;
  params.sa.partition_limit = 20;
  params.sa.init_patterns = 6;
  params.seed = 6;
  const auto lut = core::run_bssa(g, dist, params).realize(width);
  core::InputWord x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(lut.eval(x));
    x = (x + 97) & ((1u << width) - 1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ApproxLutRead);

void BM_HardwareSimulation(benchmark::State& state) {
  const unsigned width = 10;
  const auto g = make_cos(width);
  const auto dist = core::InputDistribution::uniform(width);
  core::BssaParams params;
  params.bound_size = 6;
  params.rounds = 2;
  params.sa.partition_limit = 20;
  params.sa.init_patterns = 6;
  params.seed = 7;
  const auto lut = core::run_bssa(g, dist, params).realize(width);
  const auto tech = hw::Technology::nangate45();
  const hw::ApproxLutSystem system(hw::ArchKind::kDalta, lut, tech);
  const auto target = hw::make_target(system);
  util::Rng rng(8);
  for (auto _ : state) {
    auto report = hw::simulate_random(target, 256, width, nullptr, tech, rng);
    benchmark::DoNotOptimize(report.total_energy);
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_HardwareSimulation);

}  // namespace

BENCHMARK_MAIN();
