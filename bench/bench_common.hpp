// Shared helpers for the experiment harnesses (bench_table*/bench_fig*).
//
// The paper's experiments run 16-bit functions with b = 9, P = 1000 (DALTA)
// / 500 (BS-SA), Z = 30, R = 5, 10 runs on a 48-core machine. The default
// harness scale is reduced so the whole suite regenerates in minutes on one
// core; `--full` restores the paper's parameters. Partition budgets scale
// with the partition-space size C(width, b) to keep the algorithms' relative
// coverage comparable to the paper's.
#pragma once

#include <cmath>
#include <cstdio>
#include <string>

#include "core/bssa.hpp"
#include "core/dalta.hpp"
#include "func/registry.hpp"
#include "util/cli.hpp"

namespace dalut::bench {

inline core::MultiOutputFunction materialize(const func::FunctionSpec& spec) {
  return core::MultiOutputFunction::from_eval(spec.num_inputs,
                                              spec.num_outputs, spec.eval);
}

/// Paper bound-set fraction: b = 9 at n = 16.
inline unsigned default_bound_size(unsigned width) {
  const unsigned b = (9u * width + 8) / 16;
  return std::max(2u, std::min(b, width - 1));
}

inline double binomial(unsigned n, unsigned k) {
  double result = 1.0;
  for (unsigned i = 0; i < k; ++i) {
    result *= static_cast<double>(n - i) / static_cast<double>(i + 1);
  }
  return result;
}

struct ExperimentScale {
  unsigned width = 12;
  unsigned bound_size = 7;
  unsigned rounds = 3;
  unsigned init_patterns = 12;   ///< Z
  unsigned dalta_partitions = 70;
  unsigned bssa_partitions = 35;
  unsigned beam_width = 3;
  unsigned chains = 3;
  unsigned runs = 3;
};

/// Registers the scale-related options every harness shares.
inline void add_scale_options(util::CliParser& cli) {
  cli.add_option("width", "12", "function bit width (16 = paper scale)");
  cli.add_option("runs", "3", "independent runs per algorithm");
  cli.add_option("rounds", "3", "optimization rounds R");
  cli.add_option("seed", "1", "base random seed");
  cli.add_flag("full", "paper-scale parameters (width 16, R=5, 10 runs)");
}

/// Resolves the scale from CLI options (applying --full overrides).
inline ExperimentScale resolve_scale(const util::CliParser& cli) {
  ExperimentScale scale;
  if (cli.flag("full")) {
    scale.width = 16;
    scale.rounds = 5;
    scale.runs = 10;
    scale.init_patterns = 30;
    scale.dalta_partitions = 1000;
    scale.bssa_partitions = 500;
    scale.chains = 10;
  } else {
    scale.width = static_cast<unsigned>(cli.integer("width"));
    scale.runs = static_cast<unsigned>(cli.integer("runs"));
    scale.rounds = static_cast<unsigned>(cli.integer("rounds"));
    scale.bound_size = default_bound_size(scale.width);
    // Match the paper's coverage of the partition space:
    // 1000 / C(16,9) = 8.7% for DALTA, half that for BS-SA.
    const double space = binomial(scale.width, scale.bound_size);
    scale.dalta_partitions = static_cast<unsigned>(
        std::min(1000.0, std::max(20.0, std::round(0.087 * space))));
    scale.bssa_partitions = std::max(10u, scale.dalta_partitions / 2);
  }
  scale.bound_size = default_bound_size(scale.width);
  return scale;
}

inline core::DaltaParams dalta_params(const ExperimentScale& scale,
                                      std::uint64_t seed,
                                      util::ThreadPool* pool = nullptr) {
  core::DaltaParams params;
  params.bound_size = scale.bound_size;
  params.rounds = scale.rounds;
  params.partition_limit = scale.dalta_partitions;
  params.init_patterns = scale.init_patterns;
  params.seed = seed;
  params.pool = pool;
  return params;
}

inline core::BssaParams bssa_params(const ExperimentScale& scale,
                                    std::uint64_t seed,
                                    util::ThreadPool* pool = nullptr) {
  core::BssaParams params;
  params.bound_size = scale.bound_size;
  params.rounds = scale.rounds;
  params.beam_width = scale.beam_width;
  params.sa.partition_limit = scale.bssa_partitions;
  params.sa.init_patterns = scale.init_patterns;
  params.sa.chains = scale.chains;
  params.seed = seed;
  params.pool = pool;
  return params;
}

inline void print_scale(const ExperimentScale& scale) {
  std::printf(
      "scale: width=%u bound_size=%u rounds=%u Z=%u P(DALTA)=%u P(BS-SA)=%u "
      "beams=%u chains=%u runs=%u\n\n",
      scale.width, scale.bound_size, scale.rounds, scale.init_patterns,
      scale.dalta_partitions, scale.bssa_partitions, scale.beam_width,
      scale.chains, scale.runs);
}

}  // namespace dalut::bench
