// Ablation: where do BS-SA's gains come from?
//
// Decomposes the improvement over DALTA into its three ingredients by
// toggling each in isolation on a subset of benchmarks:
//   * first-round LSB model   - predictive (Sec. III-B) vs DALTA's
//     accurate-fill,
//   * beam search             - N_beam = 1 (greedy) vs 3 vs 5,
//   * SA multi-start          - 1 chain vs 3 vs 10 sharing the Phi budget.
// The last row runs DALTA's random-sampling search at BS-SA's partition
// budget, isolating the value of the SA walk itself.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "util/stats.hpp"
#include "util/table_printer.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace dalut;

struct Variant {
  std::string name;
  std::function<core::DecompositionResult(
      const core::MultiOutputFunction&, const core::InputDistribution&,
      std::uint64_t)>
      run;
};

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli(
      "Algorithm ablation - contribution of the predictive model, beam "
      "search, and SA multi-start to BS-SA's improvement");
  bench::add_scale_options(cli);
  cli.add_option("threads", "0", "worker threads (0 = hardware)");
  cli.add_option("benchmarks", "cos,exp,multiplier",
                 "comma-separated benchmark subset");
  if (!cli.parse(argc, argv)) return 0;

  const auto scale = bench::resolve_scale(cli);
  util::ThreadPool pool(static_cast<std::size_t>(cli.integer("threads")));
  const auto seed_base = static_cast<std::uint64_t>(cli.integer("seed"));
  const std::string selected = cli.str("benchmarks");

  std::printf("=== Algorithm ablation ===\n");
  bench::print_scale(scale);

  auto bssa_variant = [&](auto mutate) {
    return [&, mutate](const core::MultiOutputFunction& g,
                       const core::InputDistribution& dist,
                       std::uint64_t seed) {
      auto params = bench::bssa_params(scale, seed, &pool);
      mutate(params);
      return core::run_bssa(g, dist, params);
    };
  };

  std::vector<Variant> variants;
  variants.push_back({"BS-SA (full)", bssa_variant([](core::BssaParams&) {})});
  variants.push_back(
      {"- accurate-fill round 1", bssa_variant([](core::BssaParams& p) {
         p.first_round_model = core::LsbModel::kAccurateFill;
       })});
  variants.push_back({"- beam width 1", bssa_variant([](core::BssaParams& p) {
                        p.beam_width = 1;
                      })});
  variants.push_back({"- beam width 5", bssa_variant([](core::BssaParams& p) {
                        p.beam_width = 5;
                      })});
  variants.push_back({"- 1 SA chain", bssa_variant([](core::BssaParams& p) {
                        p.sa.chains = 1;
                      })});
  variants.push_back({"- 10 SA chains", bssa_variant([](core::BssaParams& p) {
                        p.sa.chains = 10;
                      })});
  variants.push_back(
      {"random search @ BS-SA budget",
       [&](const core::MultiOutputFunction& g,
           const core::InputDistribution& dist, std::uint64_t seed) {
         auto params = bench::dalta_params(scale, seed, &pool);
         params.partition_limit = scale.bssa_partitions;
         return core::run_dalta(g, dist, params);
       }});
  variants.push_back(
      {"DALTA (full budget)",
       [&](const core::MultiOutputFunction& g,
           const core::InputDistribution& dist, std::uint64_t seed) {
         return core::run_dalta(g, dist, bench::dalta_params(scale, seed,
                                                             &pool));
       }});

  util::TablePrinter table(
      {"variant", "geomean min MED", "geomean avg MED", "geomean stdev",
       "avg time(s)"});

  for (const auto& variant : variants) {
    std::vector<double> mins, avgs, stdevs;
    double total_time = 0.0;
    std::size_t total_runs = 0;
    for (const auto& spec : func::benchmark_suite(scale.width)) {
      if (selected.find(spec.name) == std::string::npos) continue;
      const auto g = bench::materialize(spec);
      const auto dist = core::InputDistribution::uniform(g.num_inputs());
      util::RunningStats stats;
      for (unsigned run = 0; run < scale.runs; ++run) {
        const auto result =
            variant.run(g, dist, seed_base + 1000 * run);
        stats.add(result.med);
        total_time += result.runtime_seconds;
        ++total_runs;
      }
      mins.push_back(stats.min());
      avgs.push_back(stats.mean());
      stdevs.push_back(stats.stdev());
    }
    table.add_row({variant.name,
                   util::TablePrinter::fmt(util::geomean(mins, 1e-3), 3),
                   util::TablePrinter::fmt(util::geomean(avgs, 1e-3), 3),
                   util::TablePrinter::fmt(util::geomean(stdevs, 1e-3), 3),
                   util::TablePrinter::fmt(
                       total_time / static_cast<double>(total_runs), 3)});
  }
  table.print();
  return 0;
}
