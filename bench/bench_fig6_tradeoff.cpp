// Fig. 6: accuracy-energy trade-off of cos(x) on BTO-Normal-ND.
//
// For each output bit the harness derives the three mode candidates
// (BTO / normal / ND) around the BS-SA solution, then walks the greedy
// upgrade frontier (core::greedy_frontier) from the all-BTO (cheapest)
// configuration to the all-ND (most accurate) one, printing MED and
// per-read energy for every configuration together with the
// (#BTO, #Normal, #ND) label the paper annotates. The DALTA implementation
// serves as the reference point; the paper reports 6 consecutive
// configurations dominating it.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/bit_cost.hpp"
#include "core/config_sweep.hpp"
#include "core/partition_opt.hpp"
#include "core/sa_search.hpp"
#include "hw/architectures.hpp"
#include "util/csv.hpp"
#include "util/table_printer.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace dalut;

double unit_energy(const core::Setting& setting, unsigned n,
                   const hw::Technology& tech) {
  const hw::ApproxLutUnit unit(hw::ArchKind::kBtoNormalNd,
                               core::DecomposedBit::realize(setting), n,
                               tech);
  return unit.read_energy();
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli("Fig. 6 - accuracy-energy trade-off of cos(x) on the "
                      "BTO-Normal-ND architecture");
  bench::add_scale_options(cli);
  cli.add_option("benchmark", "cos", "function to sweep");
  cli.add_option("threads", "0", "worker threads (0 = hardware)");
  cli.add_option("csv", "", "also write the frontier series to this file");
  if (!cli.parse(argc, argv)) return 0;

  const auto scale = bench::resolve_scale(cli);
  util::ThreadPool pool(static_cast<std::size_t>(cli.integer("threads")));
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed"));
  const auto tech = hw::Technology::nangate45();

  const auto spec_opt =
      func::benchmark_by_name(cli.str("benchmark"), scale.width);
  if (!spec_opt) {
    std::fprintf(stderr, "unknown benchmark '%s'\n",
                 cli.str("benchmark").c_str());
    return 1;
  }
  const auto g = bench::materialize(*spec_opt);
  const unsigned n = g.num_inputs();
  const unsigned m = g.num_outputs();
  const auto dist = core::InputDistribution::uniform(n);

  std::printf("=== Fig. 6: accuracy-energy trade-off of %s ===\n",
              spec_opt->name.c_str());
  bench::print_scale(scale);

  // DALTA reference point.
  core::DecompositionResult dalta;
  dalta.med = 1e300;
  for (unsigned run = 0; run < scale.runs; ++run) {
    auto result = core::run_dalta(
        g, dist, bench::dalta_params(scale, seed + run, &pool));
    if (result.med < dalta.med) dalta = std::move(result);
  }
  const hw::ApproxLutSystem dalta_system(hw::ArchKind::kDalta,
                                         dalta.realize(n), tech);
  const double dalta_energy = dalta_system.cost().read_energy;
  std::printf("DALTA reference: MED=%.3f energy=%.0f fJ/read\n\n", dalta.med,
              dalta_energy);

  // BS-SA solution as the anchor for the per-bit mode candidates.
  auto params = bench::bssa_params(scale, seed, &pool);
  const auto anchor = core::run_bssa(g, dist, params);
  auto cache = anchor.realize(n).values();

  std::vector<core::ModeCandidates> candidates(m);
  std::vector<std::array<double, 3>> energies(m);
  util::Rng rng(seed + 99);
  const core::OptForPartParams opt_params{scale.init_patterns, 64};
  for (unsigned k = 0; k < m; ++k) {
    const auto costs = core::build_bit_costs(
        g, cache, k, core::LsbModel::kCurrentApprox, dist);
    const auto found = core::find_best_settings(
        n, scale.bound_size, costs.c0, costs.c1, 4, params.sa, rng, &pool,
        /*track_bto=*/true);
    core::Setting normal = found.top.front();
    core::Setting bto = found.top_bto.front();
    core::Setting nd;
    for (const auto& top : found.top) {
      auto trial = core::optimize_nondisjoint(top.partition, costs.c0,
                                              costs.c1, opt_params, rng);
      if (trial.error < nd.error) nd = std::move(trial);
    }
    // The fresh search can miss the anchor's (known good) routing; evaluate
    // every mode there too so no candidate is worse than the anchor's.
    const auto& anchor_p = anchor.settings[k].partition;
    auto a_normal =
        core::optimize_normal(anchor_p, costs.c0, costs.c1, opt_params, rng);
    if (a_normal.error < normal.error) normal = std::move(a_normal);
    auto a_bto = core::optimize_bto(anchor_p, costs.c0, costs.c1);
    if (a_bto.error < bto.error) bto = std::move(a_bto);
    auto a_nd = core::optimize_nondisjoint(anchor_p, costs.c0, costs.c1,
                                           opt_params, rng);
    if (a_nd.error < nd.error) nd = std::move(a_nd);

    energies[k] = {unit_energy(bto, n, tech), unit_energy(normal, n, tech),
                   unit_energy(nd, n, tech)};
    candidates[k].by_level = {std::move(bto), std::move(normal),
                              std::move(nd)};
  }

  core::ConfigSweep sweep(g, dist, std::move(candidates),
                          std::move(energies));
  const auto frontier = core::greedy_frontier(sweep);

  util::TablePrinter table({"#BTO", "#Normal", "#ND", "MED", "MED/DALTA",
                            "energy(fJ)", "energy/DALTA", "dominates DALTA"});
  int dominating = 0;
  for (const auto& point : frontier) {
    const bool dominates =
        point.med <= dalta.med && point.cost <= dalta_energy;
    if (dominates) ++dominating;
    table.add_row(
        {std::to_string(point.mode_counts[0]),
         std::to_string(point.mode_counts[1]),
         std::to_string(point.mode_counts[2]),
         util::TablePrinter::fmt(point.med, 3),
         util::TablePrinter::fmt(point.med / dalta.med, 3),
         util::TablePrinter::fmt(point.cost, 0),
         util::TablePrinter::fmt(point.cost / dalta_energy, 3),
         dominates ? "yes" : ""});
  }
  table.print();
  std::printf(
      "\n%d configurations dominate the DALTA reference (paper: 6 at full "
      "scale).\n",
      dominating);

  if (const auto path = cli.str("csv"); !path.empty()) {
    util::CsvWriter csv(path);
    csv.write_row({"n_bto", "n_normal", "n_nd", "med", "energy_fj",
                   "dalta_med", "dalta_energy_fj"});
    for (const auto& point : frontier) {
      csv.write_row({std::to_string(point.mode_counts[0]),
                     std::to_string(point.mode_counts[1]),
                     std::to_string(point.mode_counts[2]),
                     util::CsvWriter::field(point.med),
                     util::CsvWriter::field(point.cost),
                     util::CsvWriter::field(dalta.med),
                     util::CsvWriter::field(dalta_energy)});
    }
    std::printf("wrote frontier series to %s\n", path.c_str());
  }
  return 0;
}
