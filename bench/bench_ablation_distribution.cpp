// Ablation: input-distribution awareness.
//
// The MED is defined under an input occurrence distribution p_X; the paper's
// experiments assume uniform inputs, but the whole optimization pipeline
// accepts arbitrary distributions. This harness applies a truncated-Gaussian
// input profile (as produced by e.g. sensor front-ends) and compares
//   (a) optimizing under the uniform assumption, evaluated on the true
//       distribution, against
//   (b) optimizing under the true distribution directly,
// quantifying the MED a deployment leaves on the table by ignoring its
// input statistics.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "util/stats.hpp"
#include "util/table_printer.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace dalut;

/// Truncated Gaussian centred at `centre` (fraction of the domain) with
/// sigma = `sigma_fraction` of the domain.
core::InputDistribution gaussian_inputs(unsigned num_inputs, double centre,
                                        double sigma_fraction) {
  const std::size_t domain = std::size_t{1} << num_inputs;
  const double mu = centre * static_cast<double>(domain - 1);
  const double sigma = sigma_fraction * static_cast<double>(domain);
  std::vector<double> weights(domain);
  for (std::size_t x = 0; x < domain; ++x) {
    const double z = (static_cast<double>(x) - mu) / sigma;
    weights[x] = std::exp(-0.5 * z * z);
  }
  return core::InputDistribution::from_weights(num_inputs,
                                               std::move(weights));
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli(
      "Input-distribution ablation: uniform-assumed vs distribution-aware "
      "optimization under a truncated-Gaussian input profile");
  bench::add_scale_options(cli);
  cli.add_option("threads", "0", "worker threads (0 = hardware)");
  cli.add_option("centre", "0.3", "Gaussian centre (fraction of domain)");
  cli.add_option("sigma", "0.15", "Gaussian sigma (fraction of domain)");
  if (!cli.parse(argc, argv)) return 0;

  const auto scale = bench::resolve_scale(cli);
  util::ThreadPool pool(static_cast<std::size_t>(cli.integer("threads")));
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed"));

  std::printf("=== Input-distribution ablation (Gaussian centre=%.2f "
              "sigma=%.2f) ===\n",
              cli.real("centre"), cli.real("sigma"));
  bench::print_scale(scale);

  util::TablePrinter table({"benchmark", "uniform-opt MED", "aware-opt MED",
                            "improvement"});
  std::vector<double> ratios;

  for (const auto& spec : func::benchmark_suite(scale.width)) {
    const auto g = bench::materialize(spec);
    const auto uniform = core::InputDistribution::uniform(g.num_inputs());
    const auto gaussian = gaussian_inputs(g.num_inputs(), cli.real("centre"),
                                          cli.real("sigma"));

    // Best of `runs` to damp optimizer noise - same protocol on both arms.
    double uniform_opt = 1e300;
    double aware_opt = 1e300;
    for (unsigned run = 0; run < scale.runs; ++run) {
      const auto params = bench::bssa_params(scale, seed + run, &pool);
      const auto blind = core::run_bssa(g, uniform, params);
      uniform_opt = std::min(
          uniform_opt,
          core::mean_error_distance(
              g, blind.realize(g.num_inputs()).values(), gaussian));
      const auto aware = core::run_bssa(g, gaussian, params);
      aware_opt = std::min(aware_opt, aware.med);
    }
    const double ratio = aware_opt / std::max(uniform_opt, 1e-12);
    ratios.push_back(ratio);
    table.add_row({spec.name, util::TablePrinter::fmt(uniform_opt, 3),
                   util::TablePrinter::fmt(aware_opt, 3),
                   util::TablePrinter::fmt(100.0 * (1.0 - ratio), 1) + "%"});
  }
  table.print();
  std::printf("\ngeomean MED reduction from distribution awareness: %.1f%%\n",
              100.0 * (1.0 - util::geomean(ratios, 1e-6)));
  return 0;
}
