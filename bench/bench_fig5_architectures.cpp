// Fig. 5: normalized MED / area / latency / energy of the five
// architectures - RoundOut, RoundIn, DALTA, BTO-Normal, BTO-Normal-ND -
// geometric means over the benchmark suite, normalized to DALTA.
//
// Configuration follows Sec. V-B: DALTA uses its own algorithm's best of
// `runs` runs; BTO-Normal and BTO-Normal-ND run BS-SA once (its stability
// makes repeats unnecessary); RoundOut picks the smallest q whose MED
// exceeds DALTA's; RoundIn drops w input bits (6 of 16 in the paper, scaled
// proportionally) and stores block medians. Energy is averaged over 1024
// random reads through the simulator.
#include <array>
#include <cstdio>
#include <vector>

#include "baseline/round_in.hpp"
#include "baseline/round_out.hpp"
#include "bench_common.hpp"
#include "core/evaluate.hpp"
#include "hw/simulator.hpp"
#include "util/csv.hpp"
#include "util/stats.hpp"
#include "util/table_printer.hpp"
#include "util/thread_pool.hpp"

namespace {

constexpr std::size_t kArchCount = 5;
const char* kArchNames[kArchCount] = {"RoundOut", "RoundIn", "DALTA",
                                      "BTO-Normal", "BTO-Normal-ND"};

struct Metrics {
  double med = 0.0;
  double area = 0.0;
  double delay = 0.0;
  double energy = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace dalut;

  util::CliParser cli(
      "Fig. 5 - performance of the reconfigurable hardware architectures");
  bench::add_scale_options(cli);
  cli.add_option("threads", "0", "worker threads (0 = hardware)");
  cli.add_option("reads", "1024", "random reads for energy measurement");
  cli.add_option("delta", "0.01", "mode selection factor delta");
  cli.add_option("delta-prime", "0.1", "mode selection factor delta'");
  cli.add_flag("detail", "print per-benchmark absolute metrics");
  cli.add_option("csv", "", "also write normalized geomeans to this file");
  if (!cli.parse(argc, argv)) return 0;

  const auto scale = bench::resolve_scale(cli);
  util::ThreadPool pool(static_cast<std::size_t>(cli.integer("threads")));
  const auto seed_base = static_cast<std::uint64_t>(cli.integer("seed"));
  const auto reads = static_cast<std::size_t>(cli.integer("reads"));
  const double delta = cli.real("delta");
  const double delta_prime = cli.real("delta-prime");
  // Paper: fixed w = 6 at n = 16, chosen so RoundIn's MED is comparable to
  // (slightly above) the decomposition architectures'. At full scale we use
  // that value; at reduced scale the same intent is implemented per
  // benchmark: the smallest w whose MED exceeds DALTA's.
  const bool fixed_round_in = cli.flag("full");
  // The paper runs BS-SA once, relying on its full-scale stability
  // (Table II stdev ~0.3). At reduced budgets that stability shrinks, so
  // the scaled harness gives BS-SA the same best-of-runs protocol as DALTA;
  // --full restores the paper's single-run protocol.
  const unsigned bssa_runs = cli.flag("full") ? 1 : scale.runs;
  const auto tech = hw::Technology::nangate45();

  std::printf("=== Fig. 5: architecture comparison ===\n");
  bench::print_scale(scale);

  std::array<std::vector<double>, kArchCount> med, area, delay, energy;

  for (const auto& spec : func::benchmark_suite(scale.width)) {
    const auto g = bench::materialize(spec);
    const unsigned n = g.num_inputs();
    const unsigned m = g.num_outputs();
    const auto dist = core::InputDistribution::uniform(n);
    util::Rng sim_rng(seed_base + 17);

    auto measure_system = [&](const hw::ApproxLutSystem& system,
                              const std::vector<core::OutputWord>& values) {
      Metrics metrics;
      metrics.med = core::mean_error_distance(g, values, dist);
      const auto cost = system.cost();
      metrics.area = cost.area;
      metrics.delay = cost.delay;
      const auto reference = core::MultiOutputFunction(n, m, values);
      const auto report = hw::simulate_random(
          hw::make_target(system), reads, n, &reference, tech, sim_rng);
      if (report.mismatches != 0) {
        std::fprintf(stderr, "FATAL: functional mismatch in %s\n", spec.name.c_str());
        return metrics;
      }
      metrics.energy = report.avg_read_energy;
      return metrics;
    };
    auto measure_monolithic = [&](const hw::MonolithicLut& lut,
                                  const std::vector<core::OutputWord>& values) {
      Metrics metrics;
      metrics.med = core::mean_error_distance(g, values, dist);
      const auto cost = lut.cost();
      metrics.area = cost.area;
      metrics.delay = cost.delay;
      const auto report = hw::simulate_random(hw::make_target(lut, m), reads,
                                              n, nullptr, tech, sim_rng);
      metrics.energy = report.avg_read_energy;
      return metrics;
    };

    // --- DALTA: best of `runs` runs of its own algorithm. ---
    core::DecompositionResult dalta_best;
    dalta_best.med = 1e300;
    for (unsigned run = 0; run < scale.runs; ++run) {
      auto result = core::run_dalta(
          g, dist, bench::dalta_params(scale, seed_base + run, &pool));
      if (result.med < dalta_best.med) dalta_best = std::move(result);
    }
    const auto dalta_lut = dalta_best.realize(n);
    const hw::ApproxLutSystem dalta_system(hw::ArchKind::kDalta, dalta_lut,
                                           tech);
    const Metrics m_dalta = measure_system(dalta_system, dalta_lut.values());

    // --- BTO-Normal / BTO-Normal-ND: BS-SA (see bssa_runs note above). ---
    auto run_bssa_best = [&](const core::ModePolicy& policy) {
      core::DecompositionResult best;
      best.med = 1e300;
      for (unsigned run = 0; run < bssa_runs; ++run) {
        auto params = bench::bssa_params(scale, seed_base + run, &pool);
        params.modes = policy;
        auto result = core::run_bssa(g, dist, params);
        if (result.med < best.med) best = std::move(result);
      }
      return best;
    };

    const auto bto_lut =
        run_bssa_best(core::ModePolicy::bto_normal(delta)).realize(n);
    const hw::ApproxLutSystem bto_system(hw::ArchKind::kBtoNormal, bto_lut,
                                         tech);
    const Metrics m_bto = measure_system(bto_system, bto_lut.values());

    const auto nd_lut =
        run_bssa_best(core::ModePolicy::bto_normal_nd(delta, delta_prime))
            .realize(n);
    const hw::ApproxLutSystem nd_system(hw::ArchKind::kBtoNormalNd, nd_lut,
                                        tech);
    const Metrics m_nd = measure_system(nd_system, nd_lut.values());

    // --- RoundOut: smallest q with MED above DALTA's. ---
    const unsigned q =
        baseline::RoundOut::choose_q(g, dist, m_dalta.med);
    const baseline::RoundOut round_out(g, q);
    std::vector<std::uint32_t> ro_contents(g.domain_size());
    for (core::InputWord x = 0; x < g.domain_size(); ++x) {
      ro_contents[x] = g.value(x) >> q;
    }
    const hw::MonolithicLut ro_lut(n, m - q, ro_contents, tech, 0, q);
    const Metrics m_ro = measure_monolithic(ro_lut, round_out.values());

    // --- RoundIn: drop w input LSBs, store block medians. ---
    unsigned round_in_w = 6;
    if (!fixed_round_in) {
      for (round_in_w = 1; round_in_w < n - 1; ++round_in_w) {
        const baseline::RoundIn trial(g, round_in_w);
        if (core::mean_error_distance(g, trial.values(), dist) >
            m_dalta.med) {
          break;
        }
      }
    }
    const baseline::RoundIn round_in(g, round_in_w);
    std::vector<std::uint32_t> ri_contents(round_in.table_entries());
    for (std::size_t i = 0; i < ri_contents.size(); ++i) {
      ri_contents[i] = round_in.eval(
          static_cast<core::InputWord>(i << round_in_w));
    }
    const hw::MonolithicLut ri_lut(n - round_in_w, m, ri_contents, tech,
                                   round_in_w, 0);
    const Metrics m_ri = measure_monolithic(ri_lut, round_in.values());

    const Metrics all[kArchCount] = {m_ro, m_ri, m_dalta, m_bto, m_nd};
    for (std::size_t a = 0; a < kArchCount; ++a) {
      med[a].push_back(all[a].med);
      area[a].push_back(all[a].area);
      delay[a].push_back(all[a].delay);
      energy[a].push_back(all[a].energy);
    }

    if (cli.flag("detail")) {
      std::printf("--- %s (q=%u, w=%u) ---\n", spec.name.c_str(), q,
                  round_in_w);
      util::TablePrinter detail(
          {"architecture", "MED", "area(um^2)", "delay(ns)", "energy(fJ)"});
      for (std::size_t a = 0; a < kArchCount; ++a) {
        detail.add_row({kArchNames[a], util::TablePrinter::fmt(all[a].med),
                        util::TablePrinter::fmt(all[a].area, 0),
                        util::TablePrinter::fmt(all[a].delay, 3),
                        util::TablePrinter::fmt(all[a].energy, 0)});
      }
      detail.print();
    } else {
      std::printf("done: %-11s (RoundOut q=%u, RoundIn w=%u)\n",
                  spec.name.c_str(), q, round_in_w);
    }
  }

  // --- Fig. 5 bars: geomeans normalized to DALTA (index 2). ---
  std::printf("\n=== normalized geometric means (DALTA = 1.0) ===\n");
  util::TablePrinter table({"architecture", "MED", "area", "latency",
                            "energy"});
  const double med0 = util::geomean(med[2], 1e-3);
  const double area0 = util::geomean(area[2]);
  const double delay0 = util::geomean(delay[2]);
  const double energy0 = util::geomean(energy[2]);
  for (std::size_t a = 0; a < kArchCount; ++a) {
    table.add_row(
        {kArchNames[a],
         util::TablePrinter::fmt(util::geomean(med[a], 1e-3) / med0, 3),
         util::TablePrinter::fmt(util::geomean(area[a]) / area0, 3),
         util::TablePrinter::fmt(util::geomean(delay[a]) / delay0, 3),
         util::TablePrinter::fmt(util::geomean(energy[a]) / energy0, 3)});
  }
  table.print();
  std::printf(
      "\npaper, full scale: BTO-Normal -10.4%% MED / -19.2%% energy vs "
      "DALTA;\nBTO-Normal-ND -23.0%% MED at ~same energy, +29%% area.\n");

  if (const auto path = cli.str("csv"); !path.empty()) {
    util::CsvWriter csv(path);
    csv.write_row({"architecture", "med", "area", "latency", "energy"});
    for (std::size_t a = 0; a < kArchCount; ++a) {
      csv.write_row(
          {kArchNames[a],
           util::CsvWriter::field(util::geomean(med[a], 1e-3) / med0),
           util::CsvWriter::field(util::geomean(area[a]) / area0),
           util::CsvWriter::field(util::geomean(delay[a]) / delay0),
           util::CsvWriter::field(util::geomean(energy[a]) / energy0)});
    }
    std::printf("wrote normalized series to %s\n", path.c_str());
  }
  return 0;
}
