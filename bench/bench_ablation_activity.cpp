// Ablation: input-activity dependence of the energy measurement.
//
// The paper measures "energy for 1024 read operations" with (implicitly)
// random addressing. Real access patterns toggle fewer input/output bits
// per read; this harness drives the three decomposition architectures with
// four trace shapes (uniform, Gaussian-clustered, sequential sweep,
// 1-2-bit random walk) and reports the measured per-read energy, separating
// the data-independent clocking floor from the activity-dependent part.
#include <cstdio>

#include "bench_common.hpp"
#include "func/trace.hpp"
#include "hw/simulator.hpp"
#include "util/table_printer.hpp"
#include "util/thread_pool.hpp"

int main(int argc, char** argv) {
  using namespace dalut;

  util::CliParser cli(
      "Input-activity ablation: measured energy vs access pattern");
  bench::add_scale_options(cli);
  cli.add_option("benchmark", "cos", "function to implement");
  cli.add_option("reads", "4096", "trace length");
  cli.add_option("threads", "0", "worker threads (0 = hardware)");
  if (!cli.parse(argc, argv)) return 0;

  const auto scale = bench::resolve_scale(cli);
  util::ThreadPool pool(static_cast<std::size_t>(cli.integer("threads")));
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed"));
  const auto reads = static_cast<std::size_t>(cli.integer("reads"));
  const auto tech = hw::Technology::nangate45();

  const auto spec_opt =
      func::benchmark_by_name(cli.str("benchmark"), scale.width);
  if (!spec_opt) {
    std::fprintf(stderr, "unknown benchmark\n");
    return 1;
  }
  const auto g = bench::materialize(*spec_opt);
  const auto dist = core::InputDistribution::uniform(g.num_inputs());

  std::printf("=== input-activity ablation (%s, %zu reads) ===\n",
              spec_opt->name.c_str(), reads);
  bench::print_scale(scale);

  struct Arch {
    const char* name;
    hw::ArchKind kind;
    core::ModePolicy policy;
  };
  const Arch archs[] = {
      {"DALTA", hw::ArchKind::kDalta, core::ModePolicy::normal_only()},
      {"BTO-Normal", hw::ArchKind::kBtoNormal,
       core::ModePolicy::bto_normal(0.01)},
      {"BTO-Normal-ND", hw::ArchKind::kBtoNormalNd,
       core::ModePolicy::bto_normal_nd(0.01, 0.1)},
  };
  struct Pattern {
    const char* name;
    func::TraceKind kind;
  };
  const Pattern patterns[] = {
      {"uniform", func::TraceKind::kUniform},
      {"gaussian", func::TraceKind::kGaussian},
      {"sequential", func::TraceKind::kSequential},
      {"random-walk", func::TraceKind::kRandomWalk},
  };

  util::TablePrinter table({"architecture", "trace", "input act.(bits)",
                            "energy(fJ/read)", "vs uniform"});
  for (const auto& arch : archs) {
    auto params = bench::bssa_params(scale, seed, &pool);
    params.modes = arch.policy;
    const auto lut = core::run_bssa(g, dist, params).realize(g.num_inputs());
    const hw::ApproxLutSystem system(arch.kind, lut, tech);
    const auto target = hw::make_target(system);
    const auto reference = lut.to_function();

    double uniform_energy = 0.0;
    for (const auto& pattern : patterns) {
      util::Rng rng(seed + 31);
      const auto trace =
          func::generate_trace(pattern.kind, reads, g.num_inputs(), rng);
      const auto report = hw::simulate(target, trace, &reference, tech);
      if (report.mismatches != 0) {
        std::fprintf(stderr, "FATAL: functional mismatch\n");
        return 1;
      }
      if (pattern.kind == func::TraceKind::kUniform) {
        uniform_energy = report.avg_read_energy;
      }
      table.add_row(
          {arch.name, pattern.name,
           util::TablePrinter::fmt(func::trace_activity(trace), 2),
           util::TablePrinter::fmt(report.avg_read_energy, 1),
           util::TablePrinter::fmt(report.avg_read_energy / uniform_energy,
                                   4)});
    }
    table.add_separator();
  }
  table.print();
  std::printf(
      "\nThe clocking floor of the enabled DFF arrays dominates; the\n"
      "data-dependent wire term moves total energy by only a few permille\n"
      "across access patterns - the mode configuration (which tables are\n"
      "clock-gated) is what matters, which is the paper's premise.\n");
  return 0;
}
