// Table I: the benchmark suite. Prints the paper's benchmark listing plus
// derived statistics (exact-LUT storage, output range usage) that the other
// harnesses build on.
#include <cstdio>

#include "bench_common.hpp"
#include "core/evaluate.hpp"
#include "util/table_printer.hpp"

int main(int argc, char** argv) {
  using namespace dalut;

  util::CliParser cli(
      "Table I - benchmarks used in the experiments (continuous functions "
      "from ApproxLUT, non-continuous from AxBench)");
  cli.add_option("width", "16", "function bit width");
  if (!cli.parse(argc, argv)) return 0;
  const auto width = static_cast<unsigned>(cli.integer("width"));

  std::printf("=== Table I: benchmarks (width = %u) ===\n\n", width);
  util::TablePrinter table({"benchmark", "type", "domain", "range", "#input",
                            "#output", "exact LUT bits"});
  for (const auto& spec : func::benchmark_suite(width)) {
    const auto g = bench::materialize(spec);
    const double exact_bits =
        static_cast<double>(g.domain_size()) * spec.num_outputs;
    table.add_row({spec.name, spec.continuous ? "continuous" : "non-cont.",
                   spec.domain, spec.range, std::to_string(spec.num_inputs),
                   std::to_string(spec.num_outputs),
                   util::TablePrinter::fmt(exact_bits, 0)});
  }
  table.print();

  std::printf(
      "\nA direct LUT needs 2^n entries; the decomposition-based\n"
      "architectures store 2^b + 2^(n-b+1) entries per output bit instead\n"
      "(Sec. II-B), e.g. %u + %u per bit at the paper's n=16, b=9.\n",
      1u << 9, 1u << 8);
  return 0;
}
