// Ablation: bound-set size b.
//
// The paper fixes b = 9 at n = 16 (the storage-minimizing split is around
// b = (n+1)/2; larger b gives phi more inputs and usually less error).
// This harness sweeps b over the benchmark suite and reports the
// accuracy / storage / energy trade-off, showing where the paper's 9/16
// ratio sits on the curve.
#include <cstdio>
#include <map>
#include <vector>

#include "bench_common.hpp"
#include "core/bound_size.hpp"
#include "hw/lut_ram.hpp"
#include "hw/routing_box.hpp"
#include "util/stats.hpp"
#include "util/table_printer.hpp"
#include "util/thread_pool.hpp"

int main(int argc, char** argv) {
  using namespace dalut;

  util::CliParser cli(
      "Bound-set size ablation: accuracy vs storage vs energy across b");
  bench::add_scale_options(cli);
  cli.add_option("threads", "0", "worker threads (0 = hardware)");
  cli.add_option("min-bound", "4", "smallest b to probe");
  cli.add_option("max-bound", "0", "largest b to probe (0 = n-3)");
  if (!cli.parse(argc, argv)) return 0;

  const auto scale = bench::resolve_scale(cli);
  util::ThreadPool pool(static_cast<std::size_t>(cli.integer("threads")));
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed"));
  const auto tech = hw::Technology::nangate45();

  const unsigned n = scale.width;
  const unsigned lo = static_cast<unsigned>(cli.integer("min-bound"));
  const unsigned hi_opt = static_cast<unsigned>(cli.integer("max-bound"));
  const unsigned hi = hi_opt == 0 ? n - 3 : hi_opt;

  std::printf("=== bound-set size ablation (paper: b = 9 at n = 16, i.e. "
              "b/n = 0.56) ===\n");
  bench::print_scale(scale);

  std::map<unsigned, std::vector<double>> med_by_bound;
  for (const auto& spec : func::benchmark_suite(n)) {
    const auto g = bench::materialize(spec);
    const auto dist = core::InputDistribution::uniform(n);

    core::BoundSweepParams sweep;
    sweep.min_bound = lo;
    sweep.max_bound = hi;
    sweep.probe = bench::bssa_params(scale, seed, &pool);
    const auto probes = core::sweep_bound_sizes(g, dist, sweep);
    std::printf("%-11s", spec.name.c_str());
    for (const auto& probe : probes) {
      med_by_bound[probe.bound_size].push_back(probe.med);
      std::printf("  b=%u: %.2f", probe.bound_size, probe.med);
    }
    std::printf("\n");
  }

  std::printf("\n=== geomean over the suite ===\n");
  util::TablePrinter table({"b", "b/n", "geomean MED", "entries/bit",
                            "energy(fJ)/bit"});
  for (const auto& [b, meds] : med_by_bound) {
    const std::size_t entries =
        (std::size_t{1} << b) + (std::size_t{1} << (n - b + 1));
    const hw::LutRam bound(b, 1, tech);
    const hw::LutRam free_table(n - b + 1, 1, tech);
    const hw::RoutingBox routing(n, tech);
    const double energy = routing.read_energy() + bound.read_energy(true) +
                          free_table.read_energy(true);
    table.add_row({std::to_string(b),
                   util::TablePrinter::fmt(static_cast<double>(b) / n, 2),
                   util::TablePrinter::fmt(util::geomean(meds, 1e-3), 2),
                   std::to_string(entries),
                   util::TablePrinter::fmt(energy, 0)});
  }
  table.print();
  return 0;
}
