// Ablation: shared-set size |C| of the non-disjoint decomposition.
//
// The paper limits |C| = 1 "so that the hardware cost is not increased too
// much" (Sec. IV-B1). This harness quantifies that choice: for each
// benchmark's MSB cost landscape, it optimizes the generalized
// |C| = 0 / 1 / 2 decompositions on the best partitions found by a normal
// search and reports the error alongside the hardware cost (stored LUT
// entries and modelled per-read energy with 2^|C| free tables).
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/bit_cost.hpp"
#include "core/multi_shared.hpp"
#include "core/sa_search.hpp"
#include "hw/lut_ram.hpp"
#include "hw/routing_box.hpp"
#include "util/stats.hpp"
#include "util/table_printer.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace dalut;

/// Energy of one approximate single-output LUT with 2^s free tables on.
double unit_energy(unsigned num_inputs, unsigned bound_size, unsigned shared,
                   const hw::Technology& tech) {
  const hw::LutRam bound(bound_size, 1, tech);
  const hw::LutRam free_table(num_inputs - bound_size + 1, 1, tech);
  const hw::RoutingBox routing(num_inputs, tech);
  const double tables = bound.read_energy(true) +
                        static_cast<double>(1u << shared) *
                            free_table.read_energy(true);
  // 2^s:1 output mux = (2^s - 1) mux2 cells at ~50% activity.
  const double mux = ((1u << shared) - 1) * 0.5 *
                     (tech.mux2_sw_energy + tech.wire_energy);
  return routing.read_energy() + tables + mux;
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli(
      "Non-disjoint shared-set size ablation: |C| = 0 (disjoint) vs 1 "
      "(paper) vs 2 (extension)");
  bench::add_scale_options(cli);
  cli.add_option("threads", "0", "worker threads (0 = hardware)");
  cli.add_option("partitions", "4", "top partitions to evaluate per bit");
  if (!cli.parse(argc, argv)) return 0;

  const auto scale = bench::resolve_scale(cli);
  util::ThreadPool pool(static_cast<std::size_t>(cli.integer("threads")));
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed"));
  const auto top_partitions =
      static_cast<unsigned>(cli.integer("partitions"));
  const auto tech = hw::Technology::nangate45();

  std::printf("=== ND shared-set size ablation ===\n");
  bench::print_scale(scale);

  std::vector<double> error_by_size[3];
  const core::OptForPartParams opt_params{scale.init_patterns, 64};

  for (const auto& spec : func::benchmark_suite(scale.width)) {
    const auto g = bench::materialize(spec);
    const auto dist = core::InputDistribution::uniform(g.num_inputs());
    // Cost landscape of the MSB with the predictive model - the bit where
    // decomposition quality matters most.
    const unsigned k = g.num_outputs() - 1;
    const auto costs = core::build_bit_costs(
        g, g.values(), k, core::LsbModel::kPredictive, dist);

    util::Rng rng(seed);
    core::SaParams sa;
    sa.partition_limit = scale.bssa_partitions;
    sa.init_patterns = scale.init_patterns;
    sa.chains = scale.chains;
    const auto found = core::find_best_settings(
        g.num_inputs(), scale.bound_size, costs.c0, costs.c1, top_partitions,
        sa, rng, &pool, false);

    double best[3] = {1e300, 1e300, 1e300};
    for (const auto& candidate : found.top) {
      for (unsigned s = 0; s <= 2; ++s) {
        const auto setting = core::optimize_multi_shared(
            candidate.partition, s, costs.c0, costs.c1, opt_params, rng);
        best[s] = std::min(best[s], setting.error);
      }
    }
    for (unsigned s = 0; s <= 2; ++s) error_by_size[s].push_back(best[s]);
    std::printf("done: %-11s |C|=0: %.4f  |C|=1: %.4f  |C|=2: %.4f\n",
                spec.name.c_str(), best[0], best[1], best[2]);
  }

  std::printf("\n=== geomean over the suite (MSB cost landscape) ===\n");
  util::TablePrinter table({"|C|", "geomean error", "vs disjoint",
                            "LUT entries/bit", "energy(fJ)/bit",
                            "energy vs disjoint"});
  const unsigned n = scale.width;
  const unsigned b = scale.bound_size;
  const double e0 = util::geomean(error_by_size[0], 1e-9);
  const double energy0 = unit_energy(n, b, 0, tech);
  for (unsigned s = 0; s <= 2; ++s) {
    const double error = util::geomean(error_by_size[s], 1e-9);
    const std::size_t entries =
        (std::size_t{1} << b) +
        (std::size_t{1} << s) * (std::size_t{1} << (n - b + 1));
    const double energy = unit_energy(n, b, s, tech);
    table.add_row({std::to_string(s), util::TablePrinter::fmt(error, 4),
                   util::TablePrinter::fmt(error / e0, 3),
                   std::to_string(entries),
                   util::TablePrinter::fmt(energy, 0),
                   util::TablePrinter::fmt(energy / energy0, 3)});
  }
  table.print();
  std::printf(
      "\nThe paper's |C| = 1 choice buys most of the accuracy gain at a\n"
      "fraction of |C| = 2's energy/storage overhead.\n");
  return 0;
}
