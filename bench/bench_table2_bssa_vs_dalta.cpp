// Table II: DALTA's algorithm vs BS-SA - min / avg / stdev of MED and
// average runtime over repeated independent runs, with geometric means.
//
// Paper reference (16-bit, 10 runs, 44 threads): BS-SA reduces the minimum
// MED by 11.1% and the stdev by 97.1% at half of DALTA's runtime. The
// default harness runs a scaled-down configuration (see bench_common.hpp);
// pass --full for the paper's parameters (hours on one core).
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "util/stats.hpp"
#include "util/table_printer.hpp"
#include "util/thread_pool.hpp"

int main(int argc, char** argv) {
  using namespace dalut;

  util::CliParser cli("Table II - comparison of DALTA's algorithm and BS-SA");
  bench::add_scale_options(cli);
  cli.add_option("threads", "0", "worker threads (0 = hardware)");
  cli.add_option("benchmarks", "", "comma-separated subset (default: all)");
  if (!cli.parse(argc, argv)) return 0;

  const auto scale = bench::resolve_scale(cli);
  util::ThreadPool pool(static_cast<std::size_t>(cli.integer("threads")));
  const auto seed_base = static_cast<std::uint64_t>(cli.integer("seed"));
  const std::string only = cli.str("benchmarks");

  std::printf("=== Table II: DALTA vs BS-SA (MED over %u runs) ===\n",
              scale.runs);
  bench::print_scale(scale);

  util::TablePrinter table({"benchmark", "DALTA Min", "DALTA Avg",
                            "DALTA Stdev", "DALTA Time(s)", "BS-SA Min",
                            "BS-SA Avg", "BS-SA Stdev", "BS-SA Time(s)"});

  struct Row {
    double d_min, d_avg, d_sd, d_t, b_min, b_avg, b_sd, b_t;
  };
  std::vector<Row> rows;

  for (const auto& spec : func::benchmark_suite(scale.width)) {
    if (!only.empty() && only.find(spec.name) == std::string::npos) continue;
    const auto g = bench::materialize(spec);
    const auto dist = core::InputDistribution::uniform(g.num_inputs());

    util::RunningStats dalta_med, bssa_med;
    double dalta_time = 0.0;
    double bssa_time = 0.0;
    for (unsigned run = 0; run < scale.runs; ++run) {
      const std::uint64_t seed = seed_base + 1000 * run;
      const auto d =
          core::run_dalta(g, dist, bench::dalta_params(scale, seed, &pool));
      dalta_med.add(d.med);
      dalta_time += d.runtime_seconds;
      const auto b =
          core::run_bssa(g, dist, bench::bssa_params(scale, seed, &pool));
      bssa_med.add(b.med);
      bssa_time += b.runtime_seconds;
    }
    const Row row{dalta_med.min(),
                  dalta_med.mean(),
                  dalta_med.stdev(),
                  dalta_time / scale.runs,
                  bssa_med.min(),
                  bssa_med.mean(),
                  bssa_med.stdev(),
                  bssa_time / scale.runs};
    rows.push_back(row);
    table.add_row({spec.name, util::TablePrinter::fmt(row.d_min),
                   util::TablePrinter::fmt(row.d_avg),
                   util::TablePrinter::fmt(row.d_sd),
                   util::TablePrinter::fmt(row.d_t, 3),
                   util::TablePrinter::fmt(row.b_min),
                   util::TablePrinter::fmt(row.b_avg),
                   util::TablePrinter::fmt(row.b_sd),
                   util::TablePrinter::fmt(row.b_t, 3)});
  }

  if (rows.size() > 1) {
    auto column = [&](double Row::* member) {
      std::vector<double> values;
      values.reserve(rows.size());
      for (const auto& row : rows) values.push_back(row.*member);
      return util::geomean(values, 1e-3);
    };
    const double d_min = column(&Row::d_min);
    const double b_min = column(&Row::b_min);
    const double d_sd = column(&Row::d_sd);
    const double b_sd = column(&Row::b_sd);
    const double d_t = column(&Row::d_t);
    const double b_t = column(&Row::b_t);
    table.add_separator();
    table.add_row({"GEOMEAN", util::TablePrinter::fmt(d_min),
                   util::TablePrinter::fmt(column(&Row::d_avg)),
                   util::TablePrinter::fmt(d_sd),
                   util::TablePrinter::fmt(d_t, 3),
                   util::TablePrinter::fmt(b_min),
                   util::TablePrinter::fmt(column(&Row::b_avg)),
                   util::TablePrinter::fmt(b_sd),
                   util::TablePrinter::fmt(b_t, 3)});
    table.print();
    std::printf(
        "\nBS-SA vs DALTA: min MED %+.1f%%, stdev %+.1f%%, runtime x%.2f\n"
        "(paper, full scale: -11.1%% min MED, -97.1%% stdev, x0.45 runtime)\n",
        100.0 * (b_min / d_min - 1.0), 100.0 * (b_sd / d_sd - 1.0),
        b_t / d_t);
  } else {
    table.print();
  }
  return 0;
}
