// Streaming-engine benchmark: batched LUT serving throughput and runtime
// reconfiguration latency (docs/streaming.md).
//
// For an exact monolithic LUT and a BS-SA-searched BTO-Normal-ND system it
// measures, on the same random sample sequence:
//
//   * the scalar simulate() loop (the baseline the engine replaces),
//   * the single-stream batched path (stream_simulate), asserting the
//     SimulationReport is bit-identical to the scalar loop,
//   * the multi-producer StreamEngine (SPSC rings + deterministic drain),
//     sharded so the merged order equals the original sequence — its report
//     must also be bit-identical,
//
// then times `--reconfigs` mid-stream content swaps against a live consumer
// (full reconfiguration latency: begin_update wait + reprogram + publish +
// first retire on the new epoch). Results go to stdout or `--out` as
// schema dalut-bench-report-v4 JSON with a "stream" section
// (BENCH_PR10.json in the repo records a reference run; CI validates a
// smoke run with scripts/check_stream_smoke.py). `--listen` exposes the
// stream.* counters on a live /metrics endpoint while the tool runs.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/bssa.hpp"
#include "func/registry.hpp"
#include "hw/stream_engine.hpp"
#include "obs/exporter.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"
#include "util/telemetry.hpp"
#include "util/timer.hpp"

namespace {

using namespace dalut;

core::MultiOutputFunction make_function(const std::string& name,
                                        unsigned width) {
  const auto spec = func::benchmark_by_name(name, width);
  if (!spec) {
    throw std::invalid_argument("unknown benchmark: " + name);
  }
  return core::MultiOutputFunction::from_eval(spec->num_inputs,
                                              spec->num_outputs, spec->eval);
}

std::vector<core::InputWord> make_sequence(std::size_t count, unsigned width,
                                           std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<core::InputWord> sequence(count);
  const std::uint64_t domain = std::uint64_t{1} << width;
  for (auto& x : sequence) {
    x = static_cast<core::InputWord>(rng.next_below(domain));
  }
  return sequence;
}

struct ReconfigStats {
  std::size_t count = 0;
  std::uint64_t observed = 0;  ///< epoch advances the consumer saw
  double min_us = 0.0;
  double mean_us = 0.0;
  double max_us = 0.0;
};

struct StreamRow {
  std::string target;
  double scalar_rps = 0.0;
  double stream_rps = 0.0;
  double engine_rps = 0.0;
  bool bit_identical = false;
  std::size_t batches = 0;
  std::uint64_t wait_spins = 0;
  ReconfigStats reconfig;
};

/// Pushes chunk j of `sequence` (batch-size granules) to ring j % producers:
/// under the engine's deterministic round-robin drain the merged order then
/// equals `sequence` itself, so the engine report can be compared against
/// the scalar report with operator==.
void run_producers(hw::StreamEngine& engine,
                   const std::vector<core::InputWord>& sequence,
                   std::size_t batch, std::vector<std::thread>& threads) {
  const std::size_t producers = engine.num_producers();
  for (std::size_t p = 0; p < producers; ++p) {
    threads.emplace_back([&engine, &sequence, batch, producers, p] {
      auto& ring = engine.ring(p);
      for (std::size_t chunk = p * batch; chunk < sequence.size();
           chunk += producers * batch) {
        const std::size_t take =
            std::min(batch, sequence.size() - chunk);
        std::size_t pushed = 0;
        while (pushed < take) {
          pushed += ring.try_push(sequence.data() + chunk + pushed,
                                  take - pushed);
          if (pushed < take) std::this_thread::yield();
        }
      }
      ring.close();
    });
  }
}

/// Times `reconfigs` content swaps against a dedicated live consumer that
/// keeps evaluating batches throughout, so each latency includes a real
/// in-flight batch finishing on the old table. `swap(i)` publishes swap i
/// and returns the new epoch.
template <typename Swap>
ReconfigStats measure_reconfig(hw::StreamTarget& target, unsigned reconfigs,
                               unsigned width, std::uint64_t seed,
                               Swap&& swap) {
  const auto batch = make_sequence(4096, width, seed);
  std::vector<core::OutputWord> y(batch.size());
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> observed{0};
  std::thread consumer([&] {
    std::uint64_t last = 0;
    while (!stop.load(std::memory_order_acquire)) {
      std::uint64_t epoch = 0;
      const hw::TableImage& image = target.acquire(epoch);
      target.eval_batch(image, batch.data(), y.data(), batch.size());
      target.mark_applied(epoch);
      if (epoch != last) {
        observed.fetch_add(epoch - last, std::memory_order_relaxed);
        last = epoch;
      }
    }
  });

  ReconfigStats stats;
  stats.count = reconfigs;
  double total = 0.0;
  for (unsigned i = 0; i < reconfigs; ++i) {
    util::WallTimer timer;
    const std::uint64_t epoch = swap(i);
    while (target.applied_epoch() < epoch) std::this_thread::yield();
    const double us = timer.seconds() * 1e6;
    total += us;
    stats.min_us = i == 0 ? us : std::min(stats.min_us, us);
    stats.max_us = std::max(stats.max_us, us);
  }
  stats.mean_us = reconfigs > 0 ? total / reconfigs : 0.0;
  stop.store(true, std::memory_order_release);
  consumer.join();
  stats.observed = observed.load(std::memory_order_relaxed);
  return stats;
}

template <typename Compile>
StreamRow bench_target(const std::string& name, const hw::Technology& tech,
                       const core::MultiOutputFunction& reference,
                       const std::vector<core::InputWord>& sequence,
                       const hw::SimulationReport& scalar,
                       double scalar_seconds, std::size_t producers,
                       const hw::StreamConfig& config, Compile&& compile) {
  StreamRow row;
  row.target = name;
  row.scalar_rps = scalar_seconds > 0
                       ? static_cast<double>(sequence.size()) / scalar_seconds
                       : 0.0;

  // Single-stream batched path.
  auto target = compile();
  util::WallTimer timer;
  const auto batched = hw::stream_simulate(target, sequence, &reference, tech,
                                           config.batch_size);
  const double stream_seconds = timer.seconds();
  row.stream_rps = stream_seconds > 0
                       ? static_cast<double>(sequence.size()) / stream_seconds
                       : 0.0;

  // Multi-producer engine, sharded to reproduce the scalar order.
  hw::StreamEngine engine(target, tech, producers, config);
  std::vector<std::thread> threads;
  run_producers(engine, sequence, config.batch_size, threads);
  const auto engine_report = engine.run(&reference);
  for (auto& t : threads) t.join();

  row.engine_rps = engine_report.reads_per_sec;
  row.batches = engine_report.batches;
  row.wait_spins = engine_report.wait_spins;
  row.bit_identical = batched == scalar && engine_report.sim == scalar;
  return row;
}

void write_json(std::FILE* out, const std::vector<StreamRow>& rows,
                const std::string& benchmark, unsigned width,
                std::size_t producers, const hw::StreamConfig& config,
                std::size_t reads, unsigned reconfigs, std::uint64_t seed) {
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"schema\": \"dalut-bench-report-v4\",\n");
  std::fprintf(out,
               "  \"config\": {\"benchmark\": \"%s\", \"width\": %u, "
               "\"producers\": %zu, \"batch_size\": %zu, "
               "\"ring_capacity\": %zu, \"reads\": %zu, \"reconfigs\": %u, "
               "\"seed\": %llu, \"simd_isa\": \"%s\", \"simd_lanes\": %u},\n",
               benchmark.c_str(), width, producers, config.batch_size,
               config.ring_capacity, reads, reconfigs,
               static_cast<unsigned long long>(seed), util::simd::isa_name(),
               static_cast<unsigned>(util::simd::kLanes));
  std::fprintf(out, "  \"stream\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    std::fprintf(
        out,
        "    {\"target\": \"%s\", \"scalar_reads_per_sec\": %.1f, "
        "\"stream_reads_per_sec\": %.1f, \"engine_reads_per_sec\": %.1f, "
        "\"speedup_vs_scalar\": %.3f, \"bit_identical\": %s, "
        "\"batches\": %zu, \"wait_spins\": %llu,\n"
        "     \"reconfig\": {\"count\": %zu, \"observed\": %llu, "
        "\"latency_us_min\": %.2f, \"latency_us_mean\": %.2f, "
        "\"latency_us_max\": %.2f}}%s\n",
        r.target.c_str(), r.scalar_rps, r.stream_rps, r.engine_rps,
        r.scalar_rps > 0 ? r.stream_rps / r.scalar_rps : 0.0,
        r.bit_identical ? "true" : "false", r.batches,
        static_cast<unsigned long long>(r.wait_spins), r.reconfig.count,
        static_cast<unsigned long long>(r.reconfig.observed),
        r.reconfig.min_us, r.reconfig.mean_us, r.reconfig.max_us,
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n");
  std::fprintf(out, "}\n");
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli(
      "Benchmarks the batched streaming engine against the scalar simulator "
      "and times runtime LUT reconfiguration; emits schema-v4 JSON.");
  cli.add_option("benchmark", "cos", "function family to serve");
  cli.add_option("width", "10", "input/output bit width n");
  cli.add_option("producers", "4", "producer threads feeding the engine");
  cli.add_option("batch", "1024", "samples per batch");
  cli.add_option("ring", "16384", "per-producer ring capacity");
  cli.add_option("reads", "1048576", "sample count of the throughput run");
  cli.add_option("reconfigs", "8", "timed mid-stream content swaps");
  cli.add_option("seed", "1", "RNG seed for the sample sequence");
  cli.add_option("out", "-", "output JSON path ('-' = stdout)");
  cli.add_option("listen", "",
                 "host:port for a live /metrics endpoint (empty = off)");
  if (!cli.parse(argc, argv)) return 0;

  const auto benchmark = cli.str("benchmark");
  const auto width = static_cast<unsigned>(cli.integer("width"));
  const auto producers = static_cast<std::size_t>(cli.integer("producers"));
  const auto reads = static_cast<std::size_t>(cli.integer("reads"));
  const auto reconfigs = static_cast<unsigned>(cli.integer("reconfigs"));
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed"));
  hw::StreamConfig config;
  config.batch_size = static_cast<std::size_t>(cli.integer("batch"));
  config.ring_capacity = static_cast<std::size_t>(cli.integer("ring"));

  obs::MetricsExporter exporter;
  const auto listen_spec = cli.str("listen");
  if (!listen_spec.empty()) {
    util::telemetry::set_metrics_enabled(true);
    try {
      const auto [host, port] = obs::parse_listen_spec(listen_spec);
      obs::ExporterOptions exporter_options;
      exporter_options.host = host;
      exporter_options.port = port;
      exporter.start(exporter_options);
    } catch (const std::exception& error) {
      std::fprintf(stderr, "error: %s\n", error.what());
      return 1;
    }
    std::fprintf(stderr, "observability: listening on http://%s (/metrics)\n",
                 exporter.endpoint().c_str());
    std::fflush(stderr);
  }

  try {
    const auto tech = hw::Technology::nangate45();
    const auto g = make_function(benchmark, width);
    const auto sequence = make_sequence(reads, width, seed);
    std::vector<StreamRow> rows;

    // ---- Exact monolithic LUT ------------------------------------------
    {
      std::vector<std::uint32_t> contents(g.values().begin(),
                                          g.values().end());
      const hw::MonolithicLut lut(width, g.num_outputs(), contents, tech);
      util::WallTimer timer;
      const auto scalar = hw::simulate(hw::make_target(lut, g.num_outputs()),
                                       sequence, &g, tech);
      const double scalar_seconds = timer.seconds();
      auto row = bench_target(
          "monolithic", tech, g, sequence, scalar, scalar_seconds, producers,
          config,
          [&] { return hw::StreamTarget::compile(lut, g.num_outputs()); });

      // Reconfiguration latency: swap between the exact table and its
      // bitwise complement (every entry re-programmed each swap).
      std::vector<std::uint32_t> flipped(contents);
      const std::uint32_t mask =
          g.num_outputs() >= 32
              ? ~std::uint32_t{0}
              : (std::uint32_t{1} << g.num_outputs()) - 1;
      for (auto& v : flipped) v = ~v & mask;
      const hw::MonolithicLut lut_flipped(width, g.num_outputs(), flipped,
                                          tech);
      auto target = hw::StreamTarget::compile(lut, g.num_outputs());
      row.reconfig = measure_reconfig(
          target, reconfigs, width, seed + 1, [&](unsigned i) {
            return target.reconfigure(i % 2 == 0 ? lut_flipped : lut);
          });
      rows.push_back(row);
    }

    // ---- BS-SA searched BTO-Normal-ND system ---------------------------
    {
      core::BssaParams params;
      params.bound_size = std::max(2u, width / 2);
      params.rounds = 2;
      params.beam_width = 2;
      params.sa.partition_limit = 12;
      params.sa.init_patterns = 6;
      params.seed = 3;
      const auto dist = core::InputDistribution::uniform(width);
      const auto lut = core::run_bssa(g, dist, params).realize(width);
      const auto reference = lut.to_function();
      const hw::ApproxLutSystem system(hw::ArchKind::kBtoNormalNd, lut, tech);

      util::WallTimer timer;
      const auto scalar =
          hw::simulate(hw::make_target(system), sequence, &reference, tech);
      const double scalar_seconds = timer.seconds();
      auto row = bench_target(
          "bto_normal_nd", tech, reference, sequence, scalar, scalar_seconds,
          producers, config,
          [&] { return hw::StreamTarget::compile(system); });

      // Content re-programming of the same structure (partitions and modes
      // are frozen at compile; the swap re-writes every table byte).
      auto target = hw::StreamTarget::compile(system);
      row.reconfig = measure_reconfig(target, reconfigs, width, seed + 2,
                                      [&](unsigned) {
                                        return target.reconfigure(system);
                                      });
      rows.push_back(row);
    }

    for (const auto& r : rows) {
      std::fprintf(stderr,
                   "%-14s scalar %12.0f r/s  stream %12.0f r/s  engine "
                   "%12.0f r/s  identical=%s  reconfig %.1f us mean\n",
                   r.target.c_str(), r.scalar_rps, r.stream_rps, r.engine_rps,
                   r.bit_identical ? "yes" : "NO", r.reconfig.mean_us);
      if (!r.bit_identical) {
        std::fprintf(stderr,
                     "error: %s batched report diverged from simulate()\n",
                     r.target.c_str());
        return 1;
      }
    }

    const std::string out_path = cli.str("out");
    std::FILE* out =
        out_path == "-" ? stdout : std::fopen(out_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
      return 1;
    }
    write_json(out, rows, benchmark, width, producers, config, reads,
               reconfigs, seed);
    if (out != stdout) {
      std::fclose(out);
      std::fprintf(stderr, "wrote %s\n", out_path.c_str());
    }
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
  return 0;
}
