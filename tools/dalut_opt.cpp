// dalut_opt - command-line front end for the whole flow:
//
//   optimize a function (built-in benchmark or truth-table file) with
//   BS-SA or DALTA, select an architecture, and emit any combination of a
//   configuration file, a synthesis-style cost report, Verilog, and a
//   self-checking testbench.
//
// Robustness contract (docs/robustness.md):
//   --deadline    bounds the run; on expiry the search stops cooperatively
//                 and the best-so-far result is realized and emitted.
//   SIGINT/SIGTERM request the same graceful stop (SIGKILL, of course,
//                 cannot be intercepted; use --checkpoint to survive it).
//   --checkpoint  cuts an atomic, crash-safe snapshot of the search every
//                 --checkpoint-every bit-steps; --resume continues from it
//                 bit-identically to an uninterrupted run. A run that
//                 completes deletes its checkpoint.
//
// Exit codes: 0 success, 1 fatal error, 2 usage error, 3 input parse
// error, 4 deadline expired (valid best-so-far emitted), 5 cancelled by
// signal (valid best-so-far emitted), 6 I/O error (an input, output, or
// checkpoint file could not be read or written; the message names the
// failing path and errno).
//
// Fault injection (docs/robustness.md): --failpoints or DALUT_FAILPOINTS
// arms deterministic I/O faults at named sites ("site=error[@trigger]");
// --list-failpoints prints every site. Unset, the probes are disarmed
// no-ops.
//
// Examples:
//   dalut_opt --benchmark cos --width 12 --arch bto-normal-nd --report
//   dalut_opt --table f.dalut --algorithm dalta --config-out f.cfg
//   dalut_opt --benchmark multiplier --verilog-out mult.v
//             --testbench-out mult_tb.v --tech my45nm.tech
//   dalut_opt --benchmark log2 --deadline 30s --checkpoint ck.dalut
//   dalut_opt --benchmark log2 --checkpoint ck.dalut --resume
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <stdexcept>

#include "core/bound_size.hpp"
#include "core/bssa.hpp"
#include "core/checkpoint.hpp"
#include "core/dalta.hpp"
#include "core/eval_workspace.hpp"
#include "core/serialize.hpp"
#include "core/table_io.hpp"
#include "func/extended.hpp"
#include "func/registry.hpp"
#include "hw/report.hpp"
#include "hw/simulator.hpp"
#include "hw/tech_io.hpp"
#include "hw/verilog.hpp"
#include "obs/event_log.hpp"
#include "obs/exporter.hpp"
#include "obs/run_registry.hpp"
#include "util/cli.hpp"
#include "util/failpoint.hpp"
#include "util/retry.hpp"
#include "util/run_control.hpp"
#include "util/telemetry.hpp"
#include "util/thread_pool.hpp"
#include "util/trace_writer.hpp"

namespace {

using namespace dalut;

constexpr int kExitOk = 0;
constexpr int kExitFatal = 1;
// CliParser also produces 2 directly (std::exit in parse()) for unknown
// options; kExitUsage covers malformed values parsed after it returns.
constexpr int kExitUsage = 2;
constexpr int kExitParse = 3;
constexpr int kExitDeadline = 4;
constexpr int kExitCancelled = 5;
constexpr int kExitIo = 6;

/// Checked text-artifact write: opens `path`, streams `body(out)`, flushes,
/// and reports any failure (open or write) as an I/O error naming the path.
/// Returns false after printing the error; the caller exits kExitIo.
template <typename Body>
bool write_text_artifact(const std::string& path, const char* what,
                         Body&& body) {
  std::ofstream out(path);
  if (out) {
    body(out);
    out.flush();
  }
  if (!out) {
    std::fprintf(stderr, "io error: cannot write %s to '%s': %s\n", what,
                 path.c_str(), std::strerror(errno));
    return false;
  }
  return true;
}

// The RunControl outlives main()'s locals so the signal handler can reach
// it; request_cancel() is a relaxed atomic store, hence async-signal-safe.
util::RunControl g_control;

extern "C" void handle_stop_signal(int) { g_control.request_cancel(); }

std::optional<core::MultiOutputFunction> load_function(
    const util::CliParser& cli) {
  const auto table_path = cli.str("table");
  if (!table_path.empty()) {
    const auto load_str = cli.str("table-load");
    core::TableLoadMode mode = core::TableLoadMode::kAuto;
    if (load_str == "copy") {
      mode = core::TableLoadMode::kCopy;
    } else if (load_str == "map") {
      mode = core::TableLoadMode::kMap;
    } else if (load_str != "auto") {
      std::fprintf(stderr, "error: --table-load must be auto, copy, or map\n");
      return std::nullopt;
    }
    // Binary-mode open + container auto-detection (hex text or the
    // bit-packed dalut-table-bin container). Large binary tables are
    // served from a file mapping instead of heap copies under auto/map.
    return core::load_function_file(table_path, mode);
  }
  const auto width = static_cast<unsigned>(cli.integer("width"));
  const auto name = cli.str("benchmark");
  if (auto spec = func::benchmark_by_name(name, width)) {
    return core::MultiOutputFunction::from_eval(spec->num_inputs,
                                                spec->num_outputs, spec->eval);
  }
  for (const auto& spec : func::extended_suite(width)) {
    if (spec.name == name) {
      return core::MultiOutputFunction::from_eval(
          spec.num_inputs, spec.num_outputs, spec.eval);
    }
  }
  std::fprintf(stderr, "error: unknown benchmark '%s'\n", name.c_str());
  return std::nullopt;
}

core::CostMetric parse_metric(const std::string& name) {
  if (name == "mse") return core::CostMetric::kMse;
  if (name == "er") return core::CostMetric::kErrorRate;
  return core::CostMetric::kMed;
}

int run(int argc, char** argv) {
  util::CliParser cli(
      "dalut_opt - optimize an approximate LUT decomposition and emit "
      "configuration / report / RTL");
  cli.add_option("benchmark", "cos",
                 "built-in function (Table I or extended suite)");
  cli.add_option("table", "",
                 "truth-table file, text or binary container, auto-detected "
                 "(overrides --benchmark)");
  cli.add_option("table-load", "auto",
                 "auto | copy | map: mmap large binary tables in place "
                 "(auto), always copy to memory, or always map");
  cli.add_option("table-out", "",
                 "export the input truth table here before optimizing "
                 "(with --binary-tables this converts text tables and "
                 "built-in benchmarks to the binary container)");
  cli.add_flag("binary-tables",
               "write --table-out as the bit-packed dalut-table-bin v1 "
               "container instead of hex text");
  cli.add_option("width", "12", "bit width for built-in benchmarks");
  cli.add_option("algorithm", "bssa", "bssa | dalta");
  cli.add_option("arch", "dalta",
                 "dalta | bto-normal | bto-normal-nd (bssa only)");
  cli.add_option("bound", "0", "bound-set size b (0 = 9/16 of width)");
  cli.add_option("rounds", "3", "optimization rounds R");
  cli.add_option("partitions", "60", "partition budget P");
  cli.add_option("patterns", "12", "initial pattern vectors Z");
  cli.add_option("beams", "3", "beam width (bssa)");
  cli.add_option("chains", "3", "SA chains (bssa)");
  cli.add_option("metric", "med", "objective: med | mse | er");
  cli.add_option("delta", "0.01", "mode factor delta");
  cli.add_option("delta-prime", "0.1", "mode factor delta'");
  cli.add_option("seed", "1", "random seed");
  cli.add_option("threads", "0", "worker threads (0 = hardware)");
  cli.add_option("tech", "", "technology file (default: built-in 45nm)");
  cli.add_option("config-out", "", "write the optimized configuration here");
  cli.add_option("verilog-out", "", "write synthesizable Verilog here");
  cli.add_option("testbench-out", "", "write a self-checking testbench here");
  cli.add_option("tb-vectors", "64", "testbench vector count");
  cli.add_flag("report", "print the synthesis-style cost report");
  cli.add_flag("sweep-bound",
               "probe every bound-set size first and pick the best "
               "within --med-budget (0 = most accurate)");
  cli.add_option("med-budget", "0", "MED budget for --sweep-bound");
  cli.add_option("deadline", "",
                 "wall-clock budget ('30s', '5m', '1h'); on expiry the "
                 "best-so-far result is emitted and exit code is 4");
  cli.add_option("checkpoint", "",
                 "crash-safe search checkpoint file, rewritten atomically "
                 "during the run and deleted on success");
  cli.add_option("checkpoint-every", "2",
                 "bit-steps between checkpoints (with --checkpoint)");
  cli.add_flag("resume",
               "continue from --checkpoint (bit-identical to an "
               "uninterrupted run); fresh start if the file is missing");
  cli.add_option("metrics-out", "",
                 "write the aggregated metrics snapshot + per-bit "
                 "best-error trajectory here as JSON (enables metrics)");
  cli.add_option("trace-out", "",
                 "write a Chrome trace-event JSON of the run here, loadable "
                 "in Perfetto or chrome://tracing (enables span tracing)");
  cli.add_option("listen", "",
                 "serve GET /metrics (Prometheus), /healthz, and /runs over "
                 "HTTP while the run is live; host:port, :port, or port "
                 "(host defaults to 127.0.0.1, port 0 binds an ephemeral "
                 "port; the bound endpoint is printed to stderr)");
  cli.add_option("events-out", "",
                 "write the dalut-events v1 structured JSONL lifecycle log "
                 "here (job/checkpoint/retry/failpoint events; bounded "
                 "queue, never blocks the search)");
  cli.add_flag("progress",
               "print a human-readable progress line (throttled, plus the "
               "final at-completion report) to stderr");
  cli.add_option("failpoints", "",
                 "arm deterministic I/O fault injection: "
                 "\"site=error[@trigger]\" entries, comma-separated "
                 "(also read from DALUT_FAILPOINTS; see --list-failpoints)");
  cli.add_flag("list-failpoints",
               "print every registered fault-injection site and exit");
  if (!cli.parse(argc, argv)) return kExitOk;

  if (cli.flag("list-failpoints")) {
    for (const auto& site : util::fp::all_sites()) {
      std::printf("%s\n", site.c_str());
    }
    return kExitOk;
  }
  try {
    util::fp::configure_from_env();
    if (const auto spec = cli.str("failpoints"); !spec.empty()) {
      util::fp::configure(spec);
    }
  } catch (const std::invalid_argument& error) {
    std::fprintf(stderr, "error: --failpoints/DALUT_FAILPOINTS: %s\n",
                 error.what());
    return kExitUsage;
  }

  // --- Run control: deadline + signals. ---
  util::RunControl& control = g_control;
  if (const auto deadline = cli.str("deadline"); !deadline.empty()) {
    control.set_deadline_after(util::parse_duration(deadline, "--deadline"));
  }
  std::signal(SIGINT, handle_stop_signal);
  std::signal(SIGTERM, handle_stop_signal);

  // --- Observability: metrics registry, span tracing, progress. ---
  // Telemetry is write-only for the searches, so enabling it cannot change
  // the emitted settings or MEDs (docs/observability.md).
  const auto metrics_out = cli.str("metrics-out");
  const auto trace_out = cli.str("trace-out");
  const auto listen_spec = cli.str("listen");
  const auto events_out = cli.str("events-out");
  if (!metrics_out.empty()) util::telemetry::set_metrics_enabled(true);
  if (!trace_out.empty()) util::telemetry::set_tracing_enabled(true);

  // The live observability plane: counters feed /metrics, so both surfaces
  // force the registry on; neither reads anything back into the search
  // (write-only guarantee, docs/observability.md).
  obs::EventLog& events = obs::EventLog::instance();
  if (!events_out.empty()) {
    util::telemetry::set_metrics_enabled(true);
    try {
      events.open(events_out);
    } catch (const std::exception& error) {
      std::fprintf(stderr, "io error: %s\n", error.what());
      return kExitIo;
    }
  }
  obs::MetricsExporter exporter;  // stops (if started) when run() returns
  if (!listen_spec.empty()) {
    util::telemetry::set_metrics_enabled(true);
    obs::RunRegistry::instance().set_enabled(true);
    try {
      const auto [host, port] = obs::parse_listen_spec(listen_spec);
      obs::ExporterOptions exporter_options;
      exporter_options.host = host;
      exporter_options.port = port;
      exporter_options.control = &control;
      exporter.start(exporter_options);
    } catch (const std::invalid_argument& error) {
      std::fprintf(stderr, "error: %s\n", error.what());
      return kExitUsage;
    } catch (const std::exception& error) {
      std::fprintf(stderr, "io error: %s\n", error.what());
      return kExitIo;
    }
    // Grep-able and flushed before the run starts, so a harness scraping an
    // ephemeral port (--listen 127.0.0.1:0) can find it immediately.
    std::fprintf(stderr, "observability: listening on http://%s (/metrics, "
                 "/healthz, /runs)\n",
                 exporter.endpoint().c_str());
    std::fflush(stderr);
  }
  // The single run shows up on /runs under its function name.
  const std::string run_name =
      cli.str("table").empty() ? cli.str("benchmark") : cli.str("table");
  obs::RunRegistry::instance().declare(run_name, cli.str("algorithm"));
  const obs::EventLog::JobScope event_scope(run_name);

  std::function<void(const util::RunProgress&)> progress_line;
  if (cli.flag("progress")) {
    progress_line = [](const util::RunProgress& p) {
      std::fprintf(stderr,
                   "progress: %s round %u bit %u (step %zu/%zu, best "
                   "%.4f)\n",
                   p.stage, p.round, p.bit, p.steps_done, p.steps_total,
                   p.best_error);
    };
  }
  // /runs rides the same throttled forward as the human progress line (the
  // first and at-completion reports always pass the throttle).
  std::function<void(const util::RunProgress&)> forward;
  if (progress_line || !listen_spec.empty()) {
    forward = [&, run_name](const util::RunProgress& p) {
      obs::RunRegistry::instance().job_progress(run_name, p);
      if (progress_line) progress_line(p);
    };
  }
  util::telemetry::SnapshotPump pump;
  if (!metrics_out.empty()) {
    // The pump observes every report (for the trajectory) and applies the
    // progress line's own 5 s throttle when forwarding.
    pump.attach(control, forward, std::chrono::seconds(5));
  } else if (forward) {
    control.set_progress_callback(forward, std::chrono::seconds(5));
  }

  // --- Checkpoint / resume. ---
  const auto checkpoint_path = cli.str("checkpoint");
  const auto checkpoint_every =
      static_cast<unsigned>(cli.integer("checkpoint-every"));
  if (cli.flag("resume") && checkpoint_path.empty()) {
    std::fprintf(stderr, "error: --resume needs --checkpoint <file>\n");
    return kExitFatal;
  }
  std::optional<core::SearchCheckpoint> resume_state;
  if (cli.flag("resume")) {
    // Generation-aware load: a torn or corrupt latest checkpoint degrades
    // to the previous generation ("<path>.1"); neither usable starts fresh.
    if (auto loaded = core::load_checkpoint_with_fallback(checkpoint_path)) {
      if (loaded->from_previous) events.emit("checkpoint.fallback");
      resume_state = std::move(loaded->checkpoint);
      std::fprintf(stderr,
                   "resuming from %s%s (%s, round %u, %u bits done, %.2f s "
                   "elapsed)\n",
                   checkpoint_path.c_str(),
                   loaded->from_previous ? " (previous generation)" : "",
                   resume_state->algorithm.c_str(), resume_state->round,
                   resume_state->bits_done, resume_state->elapsed_seconds);
    } else {
      std::fprintf(stderr,
                   "note: no usable checkpoint at '%s', starting fresh\n",
                   checkpoint_path.c_str());
    }
  }
  std::function<void(const core::SearchCheckpoint&)> sink;
  if (!checkpoint_path.empty()) {
    sink = [&checkpoint_path, &events](const core::SearchCheckpoint& ck) {
      // Best-effort: a failed snapshot (after retries) must not kill the
      // search — the run degrades to a coarser resume point.
      if (core::save_checkpoint_best_effort(checkpoint_path, ck)) {
        events.emit("checkpoint.save");
      } else {
        events.emit("checkpoint.save_failure");
        std::fprintf(stderr,
                     "warning: checkpoint save to '%s' failed, continuing "
                     "without this snapshot\n",
                     checkpoint_path.c_str());
      }
    };
  }

  const auto function = load_function(cli);
  if (!function) return kExitFatal;
  const auto& g = *function;
  if (const auto path = cli.str("table-out"); !path.empty()) {
    const auto encoding = cli.flag("binary-tables")
                              ? core::TableEncoding::kBinary
                              : core::TableEncoding::kText;
    core::save_function_file(path, g, encoding);
    std::printf("wrote %s table to %s\n",
                encoding == core::TableEncoding::kBinary ? "binary" : "text",
                path.c_str());
  }
  const auto dist = core::InputDistribution::uniform(g.num_inputs());
  // resolve_worker_count clamps 0 (and nonsense like -1) to a real pool
  // size, so `--threads 0` cannot construct an empty, deadlocking pool.
  util::ThreadPool pool(util::resolve_worker_count(cli.integer("threads")));

  unsigned bound = static_cast<unsigned>(cli.integer("bound"));
  if (bound == 0) {
    bound = std::max(2u, std::min(g.num_inputs() - 1,
                                  (9u * g.num_inputs() + 8) / 16));
  }
  if (cli.flag("sweep-bound")) {
    core::BoundSweepParams sweep;
    sweep.probe.rounds = 2;
    sweep.probe.beam_width = 2;
    sweep.probe.sa.partition_limit =
        std::max(8u, static_cast<unsigned>(cli.integer("partitions")) / 3);
    sweep.probe.sa.init_patterns =
        static_cast<unsigned>(cli.integer("patterns"));
    sweep.probe.sa.chains = static_cast<unsigned>(cli.integer("chains"));
    sweep.probe.seed = static_cast<std::uint64_t>(cli.integer("seed"));
    sweep.probe.pool = &pool;
    sweep.probe.control = &control;
    double budget = cli.real("med-budget");
    if (budget <= 0.0) budget = -1.0;  // unreachable -> most accurate size
    const auto chosen = core::choose_bound_size(g, dist, budget, sweep);
    std::printf("bound-size sweep picked b = %u (probe MED %.4f, %zu "
                "entries/bit)\n",
                chosen.bound_size, chosen.med, chosen.entries_per_bit);
    bound = chosen.bound_size;
  }

  const auto arch_name = cli.str("arch");
  hw::ArchKind arch = hw::ArchKind::kDalta;
  core::ModePolicy modes = core::ModePolicy::normal_only();
  if (arch_name == "bto-normal") {
    arch = hw::ArchKind::kBtoNormal;
    modes = core::ModePolicy::bto_normal(cli.real("delta"));
  } else if (arch_name == "bto-normal-nd") {
    arch = hw::ArchKind::kBtoNormalNd;
    modes = core::ModePolicy::bto_normal_nd(cli.real("delta"),
                                            cli.real("delta-prime"));
  } else if (arch_name != "dalta") {
    std::fprintf(stderr, "error: unknown arch '%s'\n", arch_name.c_str());
    return kExitFatal;
  }

  // --- Optimize. ---
  obs::RunRegistry::instance().job_started(run_name);
  events.emit("job.start");
  core::DecompositionResult result;
  if (cli.str("algorithm") == "dalta") {
    if (arch != hw::ArchKind::kDalta) {
      std::fprintf(stderr,
                   "error: the DALTA algorithm only supports --arch dalta\n");
      return kExitFatal;
    }
    core::DaltaParams params;
    params.bound_size = bound;
    params.rounds = static_cast<unsigned>(cli.integer("rounds"));
    params.partition_limit = static_cast<unsigned>(cli.integer("partitions"));
    params.init_patterns = static_cast<unsigned>(cli.integer("patterns"));
    params.metric = parse_metric(cli.str("metric"));
    params.seed = static_cast<std::uint64_t>(cli.integer("seed"));
    params.pool = &pool;
    params.control = &control;
    params.checkpoint_every = sink ? checkpoint_every : 0;
    params.checkpoint_sink = sink;
    params.resume = resume_state ? &*resume_state : nullptr;
    result = core::run_dalta(g, dist, params);
  } else if (cli.str("algorithm") == "bssa") {
    core::BssaParams params;
    params.bound_size = bound;
    params.rounds = static_cast<unsigned>(cli.integer("rounds"));
    params.beam_width = static_cast<unsigned>(cli.integer("beams"));
    params.sa.partition_limit =
        static_cast<unsigned>(cli.integer("partitions"));
    params.sa.init_patterns = static_cast<unsigned>(cli.integer("patterns"));
    params.sa.chains = static_cast<unsigned>(cli.integer("chains"));
    params.modes = modes;
    params.metric = parse_metric(cli.str("metric"));
    params.seed = static_cast<std::uint64_t>(cli.integer("seed"));
    params.pool = &pool;
    params.control = &control;
    params.checkpoint_every = sink ? checkpoint_every : 0;
    params.checkpoint_sink = sink;
    params.resume = resume_state ? &*resume_state : nullptr;
    result = core::run_bssa(g, dist, params);
  } else {
    std::fprintf(stderr, "error: unknown algorithm '%s'\n",
                 cli.str("algorithm").c_str());
    return kExitFatal;
  }

  events.emit("job.finish");
  obs::RunRegistry::instance().job_completed(run_name, result.report.med,
                                             /*from_cache=*/false,
                                             result.resumed);
  if (result.status != util::RunStatus::kCompleted) {
    std::fprintf(stderr,
                 "note: run stopped early (%s); emitting the best-so-far "
                 "result\n",
                 util::to_string(result.status));
  }
  std::printf(
      "optimized %u->%u-bit function: MED %.4f, MSE %.4f, error rate %.4f, "
      "max ED %g\n",
      g.num_inputs(), g.num_outputs(), result.report.med, result.report.mse,
      result.report.error_rate, result.report.max_ed);
  std::printf("runtime %.2f s, %zu partitions evaluated\n",
              result.runtime_seconds, result.partitions_evaluated);

  const auto lut = result.realize(g.num_inputs());
  std::printf("stored LUT bits: %zu (direct LUT: %zu)\n",
              lut.stored_entries(),
              g.domain_size() * g.num_outputs());

  // --- Technology + hardware. ---
  hw::Technology tech = hw::Technology::nangate45();
  if (const auto tech_path = cli.str("tech"); !tech_path.empty()) {
    std::ifstream in(tech_path);
    if (!in) {
      std::fprintf(stderr, "io error: cannot open tech file '%s': %s\n",
                   tech_path.c_str(), std::strerror(errno));
      return kExitIo;
    }
    tech = hw::read_technology(in);
  }
  const hw::ApproxLutSystem system(arch, lut, tech);

  // Functional sign-off.
  const auto reference = lut.to_function();
  util::Rng rng(static_cast<std::uint64_t>(cli.integer("seed")) + 7);
  const auto sim = hw::simulate_random(hw::make_target(system), 1024,
                                       g.num_inputs(), &reference, tech, rng);
  if (sim.mismatches != 0) {
    std::fprintf(stderr, "FATAL: %zu hardware/functional mismatches\n",
                 sim.mismatches);
    return kExitFatal;
  }
  std::printf("hardware verified (1024 reads), avg %.0f fJ/read\n",
              sim.avg_read_energy);

  if (cli.flag("report")) {
    std::fputs(hw::format_report(system).c_str(), stdout);
  }

  // --- Outputs. ---
  if (const auto path = cli.str("config-out"); !path.empty()) {
    if (!write_text_artifact(path, "configuration", [&](std::ostream& out) {
          core::write_config(
              out, {g.num_inputs(), g.num_outputs(), result.settings});
        })) {
      return kExitIo;
    }
    std::printf("wrote configuration to %s\n", path.c_str());
  }
  if (const auto path = cli.str("verilog-out"); !path.empty()) {
    if (!write_text_artifact(path, "Verilog", [&](std::ostream& out) {
          out << hw::emit_system_verilog(system, "dalut_top");
        })) {
      return kExitIo;
    }
    std::printf("wrote Verilog to %s\n", path.c_str());
  }
  if (const auto path = cli.str("testbench-out"); !path.empty()) {
    if (!write_text_artifact(path, "testbench", [&](std::ostream& out) {
          out << hw::emit_system_testbench(
              system, "dalut_top",
              static_cast<std::size_t>(cli.integer("tb-vectors")),
              static_cast<std::uint64_t>(cli.integer("seed")));
        })) {
      return kExitIo;
    }
    std::printf("wrote testbench to %s\n", path.c_str());
  }

  // --- Telemetry artifacts (also emitted for early-stopped runs). ---
  // Close the event log first so its written/dropped counters are final in
  // the metrics snapshot below.
  events.close();
  if (!metrics_out.empty()) {
    // Cache occupancy is a point-in-time value, published as gauges just
    // before export.
    const auto cache = core::eval_cache_stats();
    util::telemetry::Gauge::get("evalcache.entries")
        .set(static_cast<double>(cache.entries));
    util::telemetry::Gauge::get("evalcache.bytes")
        .set(static_cast<double>(cache.bytes));
    std::ofstream out(metrics_out);
    if (!out) {
      std::fprintf(stderr, "io error: cannot write metrics to '%s': %s\n",
                   metrics_out.c_str(), std::strerror(errno));
      return kExitIo;
    }
    out << "{\n  \"schema\": \"dalut-metrics-v1\",\n  \"run\": {\n"
        << "    \"algorithm\": \"" << cli.str("algorithm") << "\",\n"
        << "    \"arch\": \"" << arch_name << "\",\n    \"function\": \""
        << util::telemetry::json_escape(
               cli.str("table").empty() ? cli.str("benchmark")
                                        : cli.str("table"))
        << "\",\n    \"num_inputs\": " << g.num_inputs()
        << ",\n    \"num_outputs\": " << g.num_outputs()
        << ",\n    \"threads\": " << cli.integer("threads")
        << ",\n    \"seed\": " << cli.integer("seed")
        << ",\n    \"status\": \"" << util::to_string(result.status)
        << "\",\n    \"med\": ";
    // Exact 17-digit round-trip for finite MEDs; non-finite values (a run
    // stopped before any result) must land as null, not bare inf/nan.
    char med_buf[64] = "null";
    if (std::isfinite(result.med)) {
      std::snprintf(med_buf, sizeof med_buf, "%.17g", result.med);
    }
    out << med_buf << ",\n    \"runtime_seconds\": "
        << result.runtime_seconds << ",\n    \"partitions_evaluated\": "
        << result.partitions_evaluated << "\n  },\n  \"metrics\":\n";
    util::telemetry::write_metrics_json(out, util::telemetry::snapshot_metrics(),
                                        2);
    out << ",\n  \"trajectory\":\n";
    pump.write_trajectory_json(out, 2);
    out << "\n}\n";
    std::printf("wrote metrics to %s\n", metrics_out.c_str());
  }
  if (!trace_out.empty()) {
    std::ofstream out(trace_out);
    if (!out) {
      std::fprintf(stderr, "io error: cannot write trace to '%s': %s\n",
                   trace_out.c_str(), std::strerror(errno));
      return kExitIo;
    }
    util::telemetry::write_chrome_trace(out);
    std::printf("wrote trace to %s\n", trace_out.c_str());
  }

  // Telemetry for the injection harness: which sites were hit and fired.
  if (util::fp::active()) {
    std::fprintf(stderr, "failpoints:\n%s", util::fp::dump().c_str());
  }

  switch (result.status) {
    case util::RunStatus::kDeadlineExpired:
      return kExitDeadline;
    case util::RunStatus::kCancelled:
      return kExitCancelled;
    case util::RunStatus::kCompleted:
      break;
  }
  // A finished run leaves no stale checkpoint behind — including a *.tmp
  // orphaned by an earlier crash mid-save; a later --resume then simply
  // starts fresh (and lands on the identical result).
  if (!checkpoint_path.empty()) core::remove_checkpoint(checkpoint_path);
  return kExitOk;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::invalid_argument& error) {
    // Malformed inputs (truth tables, configurations, checkpoints, option
    // values) raise invalid_argument with line-anchored messages.
    std::fprintf(stderr, "parse error: %s\n", error.what());
    return kExitParse;
  } catch (const util::IoError& error) {
    // Fatal (or retry-exhausted) I/O on an input, output, or checkpoint
    // file; the message already names the path.
    std::fprintf(stderr, "io error: %s (errno %d%s%s)\n", error.what(),
                 error.error_code(), error.site().empty() ? "" : ", site ",
                 error.site().c_str());
    return kExitIo;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "fatal: %s\n", error.what());
    return kExitFatal;
  }
}
