// dalut_opt - command-line front end for the whole flow:
//
//   optimize a function (built-in benchmark or truth-table file) with
//   BS-SA or DALTA, select an architecture, and emit any combination of a
//   configuration file, a synthesis-style cost report, Verilog, and a
//   self-checking testbench.
//
// Examples:
//   dalut_opt --benchmark cos --width 12 --arch bto-normal-nd --report
//   dalut_opt --table f.dalut --algorithm dalta --config-out f.cfg
//   dalut_opt --benchmark multiplier --verilog-out mult.v
//             --testbench-out mult_tb.v --tech my45nm.tech
#include <cstdio>
#include <fstream>
#include <optional>

#include "core/bound_size.hpp"
#include "core/bssa.hpp"
#include "core/dalta.hpp"
#include "core/serialize.hpp"
#include "core/table_io.hpp"
#include "func/extended.hpp"
#include "func/registry.hpp"
#include "hw/report.hpp"
#include "hw/simulator.hpp"
#include "hw/tech_io.hpp"
#include "hw/verilog.hpp"
#include "util/cli.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace dalut;

std::optional<core::MultiOutputFunction> load_function(
    const util::CliParser& cli) {
  const auto table_path = cli.str("table");
  if (!table_path.empty()) {
    std::ifstream in(table_path);
    if (!in) {
      std::fprintf(stderr, "error: cannot open table '%s'\n",
                   table_path.c_str());
      return std::nullopt;
    }
    return core::read_function(in);
  }
  const auto width = static_cast<unsigned>(cli.integer("width"));
  const auto name = cli.str("benchmark");
  if (auto spec = func::benchmark_by_name(name, width)) {
    return core::MultiOutputFunction::from_eval(spec->num_inputs,
                                                spec->num_outputs, spec->eval);
  }
  for (const auto& spec : func::extended_suite(width)) {
    if (spec.name == name) {
      return core::MultiOutputFunction::from_eval(
          spec.num_inputs, spec.num_outputs, spec.eval);
    }
  }
  std::fprintf(stderr, "error: unknown benchmark '%s'\n", name.c_str());
  return std::nullopt;
}

core::CostMetric parse_metric(const std::string& name) {
  if (name == "mse") return core::CostMetric::kMse;
  if (name == "er") return core::CostMetric::kErrorRate;
  return core::CostMetric::kMed;
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli(
      "dalut_opt - optimize an approximate LUT decomposition and emit "
      "configuration / report / RTL");
  cli.add_option("benchmark", "cos",
                 "built-in function (Table I or extended suite)");
  cli.add_option("table", "", "truth-table file (overrides --benchmark)");
  cli.add_option("width", "12", "bit width for built-in benchmarks");
  cli.add_option("algorithm", "bssa", "bssa | dalta");
  cli.add_option("arch", "dalta",
                 "dalta | bto-normal | bto-normal-nd (bssa only)");
  cli.add_option("bound", "0", "bound-set size b (0 = 9/16 of width)");
  cli.add_option("rounds", "3", "optimization rounds R");
  cli.add_option("partitions", "60", "partition budget P");
  cli.add_option("patterns", "12", "initial pattern vectors Z");
  cli.add_option("beams", "3", "beam width (bssa)");
  cli.add_option("chains", "3", "SA chains (bssa)");
  cli.add_option("metric", "med", "objective: med | mse | er");
  cli.add_option("delta", "0.01", "mode factor delta");
  cli.add_option("delta-prime", "0.1", "mode factor delta'");
  cli.add_option("seed", "1", "random seed");
  cli.add_option("threads", "0", "worker threads (0 = hardware)");
  cli.add_option("tech", "", "technology file (default: built-in 45nm)");
  cli.add_option("config-out", "", "write the optimized configuration here");
  cli.add_option("verilog-out", "", "write synthesizable Verilog here");
  cli.add_option("testbench-out", "", "write a self-checking testbench here");
  cli.add_option("tb-vectors", "64", "testbench vector count");
  cli.add_flag("report", "print the synthesis-style cost report");
  cli.add_flag("sweep-bound",
               "probe every bound-set size first and pick the best "
               "within --med-budget (0 = most accurate)");
  cli.add_option("med-budget", "0", "MED budget for --sweep-bound");
  if (!cli.parse(argc, argv)) return 0;

  const auto function = load_function(cli);
  if (!function) return 1;
  const auto& g = *function;
  const auto dist = core::InputDistribution::uniform(g.num_inputs());
  util::ThreadPool pool(static_cast<std::size_t>(cli.integer("threads")));

  unsigned bound = static_cast<unsigned>(cli.integer("bound"));
  if (bound == 0) {
    bound = std::max(2u, std::min(g.num_inputs() - 1,
                                  (9u * g.num_inputs() + 8) / 16));
  }
  if (cli.flag("sweep-bound")) {
    core::BoundSweepParams sweep;
    sweep.probe.rounds = 2;
    sweep.probe.beam_width = 2;
    sweep.probe.sa.partition_limit =
        std::max(8u, static_cast<unsigned>(cli.integer("partitions")) / 3);
    sweep.probe.sa.init_patterns =
        static_cast<unsigned>(cli.integer("patterns"));
    sweep.probe.sa.chains = static_cast<unsigned>(cli.integer("chains"));
    sweep.probe.seed = static_cast<std::uint64_t>(cli.integer("seed"));
    sweep.probe.pool = &pool;
    double budget = cli.real("med-budget");
    if (budget <= 0.0) budget = -1.0;  // unreachable -> most accurate size
    const auto chosen = core::choose_bound_size(g, dist, budget, sweep);
    std::printf("bound-size sweep picked b = %u (probe MED %.4f, %zu "
                "entries/bit)\n",
                chosen.bound_size, chosen.med, chosen.entries_per_bit);
    bound = chosen.bound_size;
  }

  const auto arch_name = cli.str("arch");
  hw::ArchKind arch = hw::ArchKind::kDalta;
  core::ModePolicy modes = core::ModePolicy::normal_only();
  if (arch_name == "bto-normal") {
    arch = hw::ArchKind::kBtoNormal;
    modes = core::ModePolicy::bto_normal(cli.real("delta"));
  } else if (arch_name == "bto-normal-nd") {
    arch = hw::ArchKind::kBtoNormalNd;
    modes = core::ModePolicy::bto_normal_nd(cli.real("delta"),
                                            cli.real("delta-prime"));
  } else if (arch_name != "dalta") {
    std::fprintf(stderr, "error: unknown arch '%s'\n", arch_name.c_str());
    return 1;
  }

  // --- Optimize. ---
  core::DecompositionResult result;
  if (cli.str("algorithm") == "dalta") {
    if (arch != hw::ArchKind::kDalta) {
      std::fprintf(stderr,
                   "error: the DALTA algorithm only supports --arch dalta\n");
      return 1;
    }
    core::DaltaParams params;
    params.bound_size = bound;
    params.rounds = static_cast<unsigned>(cli.integer("rounds"));
    params.partition_limit = static_cast<unsigned>(cli.integer("partitions"));
    params.init_patterns = static_cast<unsigned>(cli.integer("patterns"));
    params.metric = parse_metric(cli.str("metric"));
    params.seed = static_cast<std::uint64_t>(cli.integer("seed"));
    params.pool = &pool;
    result = core::run_dalta(g, dist, params);
  } else if (cli.str("algorithm") == "bssa") {
    core::BssaParams params;
    params.bound_size = bound;
    params.rounds = static_cast<unsigned>(cli.integer("rounds"));
    params.beam_width = static_cast<unsigned>(cli.integer("beams"));
    params.sa.partition_limit =
        static_cast<unsigned>(cli.integer("partitions"));
    params.sa.init_patterns = static_cast<unsigned>(cli.integer("patterns"));
    params.sa.chains = static_cast<unsigned>(cli.integer("chains"));
    params.modes = modes;
    params.metric = parse_metric(cli.str("metric"));
    params.seed = static_cast<std::uint64_t>(cli.integer("seed"));
    params.pool = &pool;
    result = core::run_bssa(g, dist, params);
  } else {
    std::fprintf(stderr, "error: unknown algorithm '%s'\n",
                 cli.str("algorithm").c_str());
    return 1;
  }

  std::printf(
      "optimized %u->%u-bit function: MED %.4f, MSE %.4f, error rate %.4f, "
      "max ED %g\n",
      g.num_inputs(), g.num_outputs(), result.report.med, result.report.mse,
      result.report.error_rate, result.report.max_ed);
  std::printf("runtime %.2f s, %zu partitions evaluated\n",
              result.runtime_seconds, result.partitions_evaluated);

  const auto lut = result.realize(g.num_inputs());
  std::printf("stored LUT bits: %zu (direct LUT: %zu)\n",
              lut.stored_entries(),
              g.domain_size() * g.num_outputs());

  // --- Technology + hardware. ---
  hw::Technology tech = hw::Technology::nangate45();
  if (const auto tech_path = cli.str("tech"); !tech_path.empty()) {
    std::ifstream in(tech_path);
    if (!in) {
      std::fprintf(stderr, "error: cannot open tech file '%s'\n",
                   tech_path.c_str());
      return 1;
    }
    tech = hw::read_technology(in);
  }
  const hw::ApproxLutSystem system(arch, lut, tech);

  // Functional sign-off.
  const auto reference = lut.to_function();
  util::Rng rng(static_cast<std::uint64_t>(cli.integer("seed")) + 7);
  const auto sim = hw::simulate_random(hw::make_target(system), 1024,
                                       g.num_inputs(), &reference, tech, rng);
  if (sim.mismatches != 0) {
    std::fprintf(stderr, "FATAL: %zu hardware/functional mismatches\n",
                 sim.mismatches);
    return 1;
  }
  std::printf("hardware verified (1024 reads), avg %.0f fJ/read\n",
              sim.avg_read_energy);

  if (cli.flag("report")) {
    std::fputs(hw::format_report(system).c_str(), stdout);
  }

  // --- Outputs. ---
  if (const auto path = cli.str("config-out"); !path.empty()) {
    std::ofstream out(path);
    core::write_config(
        out, {g.num_inputs(), g.num_outputs(), result.settings});
    std::printf("wrote configuration to %s\n", path.c_str());
  }
  if (const auto path = cli.str("verilog-out"); !path.empty()) {
    std::ofstream(path) << hw::emit_system_verilog(system, "dalut_top");
    std::printf("wrote Verilog to %s\n", path.c_str());
  }
  if (const auto path = cli.str("testbench-out"); !path.empty()) {
    std::ofstream(path) << hw::emit_system_testbench(
        system, "dalut_top",
        static_cast<std::size_t>(cli.integer("tb-vectors")),
        static_cast<std::uint64_t>(cli.integer("seed")));
    std::printf("wrote testbench to %s\n", path.c_str());
  }
  return 0;
}
