// Machine-readable performance report for the evaluation engine.
//
// Self-times the hot per-candidate kernels old vs. new — the reference
// CostMatrix::build / opt_for_part path against the EvalWorkspace gather and
// restart-blocked OptForPart (both return bit-identical results, so only
// the time differs) — plus the gather-memo hit path, steady-state heap
// allocations per call (counted by a global operator new hook in this
// binary), and an end-to-end BS-SA / DALTA subset of the table-2 experiment
// with candidates/sec, and a telemetry-overhead comparison of the
// instrumented SA hot path with metrics + tracing off vs. on. Results go to
// stdout or to `--out <path>` (BENCH_PR2.json / BENCH_PR4.json in the repo
// record past PR numbers; see docs/performance.md to regenerate).
//
// CI runs `dalut_bench_report --micro-only --runs 1` as a smoke check.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "core/bit_cost.hpp"
#include "core/filemap.hpp"
#include "core/bssa.hpp"
#include "core/dalta.hpp"
#include "core/eval_workspace.hpp"
#include "core/opt_for_part.hpp"
#include "core/partition_opt.hpp"
#include "core/sa_search.hpp"
#include "core/two_dim_table.hpp"
#include "func/registry.hpp"
#include "hw/stream_engine.hpp"
#include "util/cli.hpp"
#include "util/simd.hpp"
#include "util/telemetry.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"
#include "util/trace_writer.hpp"

// ---- Allocation counting hook -------------------------------------------
// Replaces the global allocation functions for this binary only. Counting
// is off by default so the hook costs two relaxed atomic loads per call.

namespace {

std::atomic<std::uint64_t> g_alloc_count{0};
std::atomic<bool> g_alloc_counting{false};

struct AllocCounter {
  static void start() {
    g_alloc_count.store(0, std::memory_order_relaxed);
    g_alloc_counting.store(true, std::memory_order_relaxed);
  }
  static std::uint64_t stop() {
    g_alloc_counting.store(false, std::memory_order_relaxed);
    return g_alloc_count.load(std::memory_order_relaxed);
  }
};

void* counted_alloc(std::size_t size) {
  if (g_alloc_counting.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

// Over-aligned form: the eval-workspace scratch buffers allocate through
// aligned_vector, which calls the align_val_t operator new — without these
// overloads those allocations would bypass the counter.
void* counted_alloc(std::size_t size, std::size_t align) {
  if (g_alloc_counting.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
  const std::size_t padded = (std::max<std::size_t>(size, 1) + align - 1) /
                             align * align;
  if (void* p = std::aligned_alloc(align, padded)) return p;
  throw std::bad_alloc();
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_alloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_alloc(size, static_cast<std::size_t>(align));
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

using namespace dalut;

core::MultiOutputFunction make_function(const std::string& name,
                                        unsigned width) {
  const auto spec = *func::benchmark_by_name(name, width);
  return core::MultiOutputFunction::from_eval(spec.num_inputs,
                                              spec.num_outputs, spec.eval);
}

unsigned bound_size_for(unsigned width) {
  const unsigned b = (9u * width + 8) / 16;  // paper's b = 9 at n = 16
  return std::max(2u, std::min(b, width - 1));
}

/// Best-of-`runs` nanoseconds per call of `body`, which is invoked `iters`
/// times per timed run after one untimed warm-up call.
template <typename Body>
double time_ns(unsigned runs, std::size_t iters, Body&& body) {
  body();  // warm up caches, scratch buffers, and the memo
  double best = 1e300;
  for (unsigned run = 0; run < std::max(1u, runs); ++run) {
    util::WallTimer timer;
    for (std::size_t i = 0; i < iters; ++i) body();
    best = std::min(best, timer.seconds() * 1e9 /
                              static_cast<double>(iters));
  }
  return best;
}

/// Steady-state allocations per call of `body` (after one warm-up call).
template <typename Body>
double allocs_per_call(std::size_t iters, Body&& body) {
  body();
  AllocCounter::start();
  for (std::size_t i = 0; i < iters; ++i) body();
  return static_cast<double>(AllocCounter::stop()) /
         static_cast<double>(iters);
}

struct MicroResult {
  std::string name;
  unsigned width = 0;
  double old_ns = 0.0;
  double new_ns = 0.0;
  double old_allocs = 0.0;
  double new_allocs = 0.0;
};

struct CacheResult {
  unsigned width = 0;
  double miss_ns = 0.0;
  double hit_ns = 0.0;
  double hit_rate = 0.0;
};

struct Table2Result {
  std::string function;
  std::string algorithm;
  unsigned width = 0;
  double med = 0.0;
  double seconds = 0.0;
  std::size_t partitions = 0;
};

std::size_t micro_iters(unsigned width) {
  // Keep each timed run in the tens of milliseconds across widths.
  return std::max<std::size_t>(3, (std::size_t{1} << 22) >> width);
}

MicroResult bench_cost_matrix(unsigned width, unsigned runs) {
  const auto g = make_function("cos", width);
  const auto dist = core::InputDistribution::uniform(width);
  const auto costs = core::build_bit_costs(
      g, g.values(), width - 1, core::LsbModel::kPredictive, dist);
  util::Rng rng(1);
  const auto p = core::Partition::random(width, bound_size_for(width), rng);
  auto& workspace = core::EvalWorkspace::local();
  const std::size_t iters = micro_iters(width);

  MicroResult result{"cost_matrix", width, 0, 0, 0, 0};
  auto old_body = [&] {
    auto matrix = core::CostMatrix::build(p, costs.c0, costs.c1);
    volatile double sink = matrix.cost0[0];
    (void)sink;
  };
  core::set_eval_cache_capacity(0);  // time the gather, not the memo
  auto new_body = [&] {
    const core::MatrixRef matrix = workspace.full_matrix(p, costs);
    volatile double sink = matrix.get().cells[0];
    (void)sink;
  };
  result.old_ns = time_ns(runs, iters, old_body);
  result.new_ns = time_ns(runs, iters, new_body);
  result.old_allocs = allocs_per_call(iters, old_body);
  result.new_allocs = allocs_per_call(iters, new_body);
  core::set_eval_cache_capacity(std::size_t{64} << 20);
  return result;
}

MicroResult bench_opt_for_part(unsigned width, unsigned runs) {
  const auto g = make_function("cos", width);
  const auto dist = core::InputDistribution::uniform(width);
  const auto costs = core::build_bit_costs(
      g, g.values(), width - 1, core::LsbModel::kPredictive, dist);
  util::Rng rng(2);
  const auto p = core::Partition::random(width, bound_size_for(width), rng);
  const auto reference = core::CostMatrix::build(p, costs.c0, costs.c1);
  auto& workspace = core::EvalWorkspace::local();
  const core::MatrixRef matrix = workspace.full_matrix(p, costs);
  const core::OptForPartParams params{30, 64};
  const std::size_t iters =
      std::max<std::size_t>(2, (std::size_t{1} << 18) >> width);

  MicroResult result{"opt_for_part", width, 0, 0, 0, 0};
  util::Rng old_rng(3);
  auto old_body = [&] {
    auto vt = core::opt_for_part(reference, params, old_rng);
    volatile double sink = vt.error;
    (void)sink;
  };
  util::Rng new_rng(3);
  auto new_body = [&] {
    auto vt = workspace.opt_for_part(matrix, params, new_rng);
    volatile double sink = vt.error;
    (void)sink;
  };
  result.old_ns = time_ns(runs, iters, old_body);
  result.new_ns = time_ns(runs, iters, new_body);
  result.old_allocs = allocs_per_call(iters, old_body);
  result.new_allocs = allocs_per_call(iters, new_body);
  return result;
}

CacheResult bench_gather_cache(unsigned width, unsigned runs) {
  const auto g = make_function("cos", width);
  const auto dist = core::InputDistribution::uniform(width);
  const auto costs = core::build_bit_costs(
      g, g.values(), width - 1, core::LsbModel::kPredictive, dist);
  util::Rng rng(4);
  const auto p = core::Partition::random(width, bound_size_for(width), rng);
  auto& workspace = core::EvalWorkspace::local();
  const std::size_t iters = micro_iters(width);

  CacheResult result;
  result.width = width;
  core::set_eval_cache_capacity(0);
  result.miss_ns = time_ns(runs, iters, [&] {
    const core::MatrixRef matrix = workspace.full_matrix(p, costs);
    volatile double sink = matrix.get().cells[0];
    (void)sink;
  });
  core::set_eval_cache_capacity(std::size_t{64} << 20);
  core::reset_eval_cache();
  result.hit_ns = time_ns(runs, iters, [&] {
    const core::MatrixRef matrix = workspace.full_matrix(p, costs);
    volatile double sink = matrix.get().cells[0];
    (void)sink;
  });
  const auto stats = core::eval_cache_stats();
  result.hit_rate = stats.hits + stats.misses == 0
                        ? 0.0
                        : static_cast<double>(stats.hits) /
                              static_cast<double>(stats.hits + stats.misses);
  core::reset_eval_cache();
  return result;
}

struct TelemetryOverheadResult {
  unsigned width = 0;
  double off_ns = 0.0;
  double on_ns = 0.0;
};

TelemetryOverheadResult bench_telemetry_overhead(unsigned width,
                                                 unsigned runs) {
  // The instrumented SA hot path: find_best_settings drives OptForPart per
  // candidate and carries the sa.* counters and sweep spans. Timed with
  // telemetry off, then with metrics + tracing on; the acceptance bound on
  // the delta is < 2% (docs/observability.md).
  const auto g = make_function("cos", width);
  const auto dist = core::InputDistribution::uniform(width);
  const auto costs = core::build_bit_costs(
      g, g.values(), width - 1, core::LsbModel::kPredictive, dist);
  core::SaParams params;
  params.partition_limit = 20;
  params.init_patterns = 8;
  params.chains = 3;
  auto body = [&] {
    // Fresh RNG per call: off and on time the exact same search, so the
    // delta is pure telemetry cost, not seed-dependent search variance.
    util::Rng rng(6);
    auto found = core::find_best_settings(width, bound_size_for(width),
                                          costs.c0, costs.c1, 3, params, rng,
                                          nullptr, false);
    volatile double sink = found.top.empty() ? 0.0 : found.top[0].error;
    (void)sink;
  };
  const std::size_t iters = 4;

  TelemetryOverheadResult result;
  result.width = width;
  util::telemetry::set_metrics_enabled(false);
  util::telemetry::set_tracing_enabled(false);
  result.off_ns = time_ns(runs, iters, body);
  util::telemetry::set_metrics_enabled(true);
  util::telemetry::set_tracing_enabled(true);
  result.on_ns = time_ns(runs, iters, body);
  util::telemetry::set_metrics_enabled(false);
  util::telemetry::set_tracing_enabled(false);
  util::telemetry::reset_metrics_for_test();
  util::telemetry::reset_tracing_for_test();
  return result;
}

struct StreamMicroResult {
  unsigned width = 0;
  double scalar_ns = 0.0;   ///< simulate() per read
  double batched_ns = 0.0;  ///< stream_simulate() per read
  bool bit_identical = false;
};

StreamMicroResult bench_stream_micro(unsigned width, unsigned runs) {
  // The scalar simulate() loop vs the batched streaming kernels on an exact
  // monolithic LUT (hw/stream_engine). Both must return the same
  // SimulationReport bit for bit; only the time may differ.
  const auto g = make_function("cos", width);
  std::vector<std::uint32_t> contents(g.values().begin(), g.values().end());
  const hw::Technology tech = hw::Technology::nangate45();
  const hw::MonolithicLut lut(width, g.num_outputs(), contents, tech);
  const auto target = hw::make_target(lut, g.num_outputs());

  util::Rng rng(5);
  std::vector<core::InputWord> sequence(std::size_t{1} << 16);
  for (auto& x : sequence) {
    x = static_cast<core::InputWord>(
        rng.next_below(std::uint64_t{1} << width));
  }

  StreamMicroResult result;
  result.width = width;
  hw::SimulationReport scalar_report;
  result.scalar_ns = time_ns(runs, 4, [&] {
    scalar_report = hw::simulate(target, sequence, &g, tech);
  }) / static_cast<double>(sequence.size());
  auto stream_target = hw::StreamTarget::compile(lut, g.num_outputs());
  hw::SimulationReport batched_report;
  result.batched_ns = time_ns(runs, 4, [&] {
    batched_report = hw::stream_simulate(stream_target, sequence, &g, tech);
  }) / static_cast<double>(sequence.size());
  result.bit_identical = batched_report == scalar_report;
  return result;
}

std::vector<Table2Result> bench_table2(unsigned width, unsigned runs,
                                       util::ThreadPool& pool) {
  // A subset of the table-2 function set, scaled down from the paper's
  // n = 16 / R = 5 so the end-to-end comparison finishes in seconds.
  const std::vector<std::string> functions{"cos", "exp", "ln"};
  std::vector<Table2Result> results;
  for (const auto& name : functions) {
    const auto g = make_function(name, width);
    const auto dist = core::InputDistribution::uniform(width);

    core::BssaParams bssa;
    bssa.bound_size = bound_size_for(width);
    bssa.rounds = 3;
    bssa.beam_width = 3;
    bssa.sa.partition_limit = 60;
    bssa.sa.init_patterns = 12;
    bssa.sa.chains = 3;
    bssa.seed = 1;
    bssa.pool = &pool;

    core::DaltaParams dalta;
    dalta.bound_size = bssa.bound_size;
    dalta.rounds = 3;
    dalta.partition_limit = 120;
    dalta.init_patterns = 12;
    dalta.seed = 1;
    dalta.pool = &pool;

    Table2Result bssa_row{name, "bssa", width, 0, 1e300, 0};
    Table2Result dalta_row{name, "dalta", width, 0, 1e300, 0};
    for (unsigned run = 0; run < std::max(1u, runs); ++run) {
      const auto b = core::run_bssa(g, dist, bssa);
      if (b.runtime_seconds < bssa_row.seconds) {
        bssa_row.med = b.med;
        bssa_row.seconds = b.runtime_seconds;
        bssa_row.partitions = b.partitions_evaluated;
      }
      const auto d = core::run_dalta(g, dist, dalta);
      if (d.runtime_seconds < dalta_row.seconds) {
        dalta_row.med = d.med;
        dalta_row.seconds = d.runtime_seconds;
        dalta_row.partitions = d.partitions_evaluated;
      }
    }
    results.push_back(bssa_row);
    results.push_back(dalta_row);
  }
  return results;
}

// ---- JSON emission ------------------------------------------------------

void write_json(std::FILE* out, const std::vector<MicroResult>& micro,
                const std::vector<CacheResult>& cache,
                const TelemetryOverheadResult& telemetry,
                const StreamMicroResult& stream,
                const std::vector<Table2Result>& table2, unsigned runs,
                bool micro_only, std::size_t workers) {
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"schema\": \"dalut-bench-report-v4\",\n");
  std::fprintf(out,
               "  \"config\": {\"runs\": %u, \"micro_only\": %s, "
               "\"pool_workers\": %zu, \"simd_isa\": \"%s\", "
               "\"simd_lanes\": %u, \"table_load\": \"%s\"},\n",
               runs, micro_only ? "true" : "false", workers,
               dalut::util::simd::isa_name(),
               static_cast<unsigned>(dalut::util::simd::kLanes),
               dalut::core::filemap_supported() ? "mmap" : "copy");

  std::fprintf(out, "  \"micro\": [\n");
  for (std::size_t i = 0; i < micro.size(); ++i) {
    const auto& m = micro[i];
    std::fprintf(out,
                 "    {\"kernel\": \"%s\", \"width\": %u, "
                 "\"old_ns_per_call\": %.1f, \"new_ns_per_call\": %.1f, "
                 "\"speedup\": %.3f, \"old_allocs_per_call\": %.2f, "
                 "\"new_allocs_per_call\": %.2f}%s\n",
                 m.name.c_str(), m.width, m.old_ns, m.new_ns,
                 m.new_ns > 0 ? m.old_ns / m.new_ns : 0.0, m.old_allocs,
                 m.new_allocs, i + 1 < micro.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");

  std::fprintf(out, "  \"gather_cache\": [\n");
  for (std::size_t i = 0; i < cache.size(); ++i) {
    const auto& c = cache[i];
    std::fprintf(out,
                 "    {\"width\": %u, \"miss_ns_per_call\": %.1f, "
                 "\"hit_ns_per_call\": %.1f, \"hit_speedup\": %.3f, "
                 "\"hit_rate\": %.4f}%s\n",
                 c.width, c.miss_ns, c.hit_ns,
                 c.hit_ns > 0 ? c.miss_ns / c.hit_ns : 0.0, c.hit_rate,
                 i + 1 < cache.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");

  std::fprintf(out,
               "  \"telemetry_overhead\": {\"width\": %u, "
               "\"off_ns_per_call\": %.1f, \"on_ns_per_call\": %.1f, "
               "\"overhead_percent\": %.3f},\n",
               telemetry.width, telemetry.off_ns, telemetry.on_ns,
               telemetry.off_ns > 0
                   ? 100.0 * (telemetry.on_ns - telemetry.off_ns) /
                         telemetry.off_ns
                   : 0.0);

  std::fprintf(out,
               "  \"stream\": {\"width\": %u, \"scalar_ns_per_read\": %.2f, "
               "\"batched_ns_per_read\": %.2f, \"speedup\": %.3f, "
               "\"bit_identical\": %s},\n",
               stream.width, stream.scalar_ns, stream.batched_ns,
               stream.batched_ns > 0 ? stream.scalar_ns / stream.batched_ns
                                     : 0.0,
               stream.bit_identical ? "true" : "false");

  std::fprintf(out, "  \"table2\": [\n");
  for (std::size_t i = 0; i < table2.size(); ++i) {
    const auto& t = table2[i];
    std::fprintf(out,
                 "    {\"function\": \"%s\", \"algorithm\": \"%s\", "
                 "\"width\": %u, \"med\": %.6f, \"seconds\": %.3f, "
                 "\"partitions_evaluated\": %zu, "
                 "\"candidates_per_sec\": %.1f}%s\n",
                 t.function.c_str(), t.algorithm.c_str(), t.width, t.med,
                 t.seconds, t.partitions,
                 t.seconds > 0 ? static_cast<double>(t.partitions) / t.seconds
                               : 0.0,
                 i + 1 < table2.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n");
  std::fprintf(out, "}\n");
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli(
      "Times the candidate-evaluation kernels old vs. new and emits a "
      "machine-readable JSON performance report.");
  cli.add_option("out", "-", "output JSON path ('-' = stdout)");
  cli.add_option("runs", "3", "timed repetitions per kernel (best is kept)");
  cli.add_option("width", "12", "bit width of the end-to-end table-2 subset");
  cli.add_flag("micro-only", "skip the end-to-end table-2 subset (CI smoke)");
  if (!cli.parse(argc, argv)) return 0;

  const auto runs = static_cast<unsigned>(cli.integer("runs"));
  const auto width = static_cast<unsigned>(cli.integer("width"));
  const bool micro_only = cli.flag("micro-only");

  std::vector<MicroResult> micro;
  // Width 16 runs even under --micro-only: CI's regression smoke keys on the
  // width-16 cost_matrix row (scripts/check_bench_smoke.py).
  for (const unsigned w : {10u, 12u, 14u, 16u}) {
    micro.push_back(bench_cost_matrix(w, runs));
  }
  for (const unsigned w : {10u, 12u, 14u}) {
    micro.push_back(bench_opt_for_part(w, runs));
  }

  std::vector<CacheResult> cache;
  cache.push_back(bench_gather_cache(14, runs));

  const TelemetryOverheadResult telemetry = bench_telemetry_overhead(10, runs);

  // Runs under --micro-only too: CI's smoke keys on bit_identical.
  const StreamMicroResult stream = bench_stream_micro(12, runs);

  std::vector<Table2Result> table2;
  std::size_t workers = 0;
  if (!micro_only) {
    util::ThreadPool pool;
    workers = pool.worker_count();
    table2 = bench_table2(width, runs, pool);
  }

  for (const auto& m : micro) {
    std::fprintf(stderr, "%-14s n=%-2u  old %10.0f ns  new %10.0f ns  x%.2f\n",
                 m.name.c_str(), m.width, m.old_ns, m.new_ns,
                 m.new_ns > 0 ? m.old_ns / m.new_ns : 0.0);
  }
  std::fprintf(stderr, "stream         n=%-2u  scalar %7.2f ns/read  batched %7.2f ns/read  x%.2f  identical=%s\n",
               stream.width, stream.scalar_ns, stream.batched_ns,
               stream.batched_ns > 0 ? stream.scalar_ns / stream.batched_ns
                                     : 0.0,
               stream.bit_identical ? "yes" : "NO");
  std::fprintf(stderr, "telemetry      n=%-2u  off %10.0f ns  on  %10.0f ns  %+.2f%%\n",
               telemetry.width, telemetry.off_ns, telemetry.on_ns,
               telemetry.off_ns > 0
                   ? 100.0 * (telemetry.on_ns - telemetry.off_ns) /
                         telemetry.off_ns
                   : 0.0);

  const std::string out_path = cli.str("out");
  std::FILE* out =
      out_path == "-" ? stdout : std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  write_json(out, micro, cache, telemetry, stream, table2, runs, micro_only,
             workers);
  if (out != stdout) {
    std::fclose(out);
    std::fprintf(stderr, "wrote %s\n", out_path.c_str());
  }
  return 0;
}
