// dalut_suite - sharded suite runner with a persistent result cache.
//
// Executes every job of a manifest (see docs/robustness.md, "Suite runs")
// through one shared thread pool: jobs shard across workers, and each
// job's search internally reuses the same pool, so small suites on big
// machines stay fully utilized. With --cache-dir, completed jobs persist
// to an on-disk result cache keyed by the job parameters plus the truth
// table content; re-running a manifest serves unchanged jobs from disk.
// With --checkpoint-dir, unfinished jobs snapshot crash-safely and a
// re-run resumes only them, bit-identically to an uninterrupted run.
//
// The CSV report is deterministic: byte-identical across worker counts,
// across kill/resume cycles, and across cache-hit re-runs.
//
// Fault isolation: a job failing with a transient I/O error is retried,
// then quarantined as a `failed` CSV row with its error message; sibling
// jobs always run to completion (docs/robustness.md, "Fault injection").
//
// Exit codes: 0 success, 1 fatal error, 2 usage error, 3 manifest/input
// parse error, 4 deadline expired, 5 cancelled by signal (valid partial
// report emitted for 4 and 5), 6 I/O failure (failing path + errno on
// stderr), 7 suite completed but at least one job was quarantined as
// failed (full report emitted; the failed rows carry the errors).
//
// Examples:
//   dalut_suite --manifest suite.manifest -j8 --csv-out results.csv
//   dalut_suite --manifest suite.manifest --cache-dir .dalut-cache
//               --checkpoint-dir .dalut-ck --deadline 10m
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/event_log.hpp"
#include "obs/exporter.hpp"
#include "obs/run_registry.hpp"
#include "suite/manifest.hpp"
#include "suite/suite_runner.hpp"
#include "util/cli.hpp"
#include "util/failpoint.hpp"
#include "util/retry.hpp"
#include "util/run_control.hpp"
#include "util/telemetry.hpp"
#include "util/thread_pool.hpp"
#include "util/trace_writer.hpp"

namespace {

using namespace dalut;

constexpr int kExitOk = 0;
constexpr int kExitFatal = 1;
constexpr int kExitUsage = 2;  // also produced by CliParser directly
constexpr int kExitParse = 3;
constexpr int kExitDeadline = 4;
constexpr int kExitCancelled = 5;
constexpr int kExitIo = 6;
constexpr int kExitJobsFailed = 7;

util::RunControl g_control;

extern "C" void handle_stop_signal(int) { g_control.request_cancel(); }

/// Expands `-j8` / `-j 8` into `--threads 8` so the make-style spelling
/// works alongside the repo's long-only CliParser.
std::vector<std::string> expand_short_jobs(int argc, char** argv) {
  std::vector<std::string> args;
  args.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "-j", 2) == 0 && arg[2] != '\0') {
      args.emplace_back("--threads");
      args.emplace_back(arg + 2);
    } else if (std::strcmp(arg, "-j") == 0 && i + 1 < argc) {
      args.emplace_back("--threads");
      args.emplace_back(argv[++i]);
    } else {
      args.emplace_back(arg);
    }
  }
  return args;
}

int run(int argc, char** argv) {
  util::CliParser cli(
      "dalut_suite - run a manifest of optimization jobs on one shared "
      "thread pool, with a persistent result cache and crash-safe "
      "per-job checkpoints");
  cli.add_option("manifest", "", "dalut-manifest v1 file (required)");
  cli.add_option("threads", "0",
                 "worker threads shared by all jobs (0 = hardware; -jN is "
                 "accepted as shorthand)");
  cli.add_option("cache-dir", "",
                 "persistent result-cache directory; completed jobs are "
                 "served from it on re-runs (empty = off)");
  cli.add_option("cache-max", "0",
                 "result-cache entry cap, oldest evicted first (0 = "
                 "unbounded)");
  cli.add_option("checkpoint-dir", "",
                 "per-job crash-safe checkpoint directory; a re-run "
                 "resumes unfinished jobs from it (empty = off)");
  cli.add_option("checkpoint-every", "2",
                 "bit-steps between job checkpoints (with "
                 "--checkpoint-dir)");
  cli.add_option("csv-out", "",
                 "write the deterministic aggregate CSV here (empty = "
                 "stdout)");
  cli.add_option("metrics-out", "",
                 "write the dalut-metrics-v1 JSON artifact (suite header, "
                 "per-job provenance, metrics snapshot, trajectory) here");
  cli.add_option("trace-out", "",
                 "write a Chrome trace-event JSON of the run here (one "
                 "suite.job span per job attempt, tagged with the job name), "
                 "loadable in Perfetto or chrome://tracing");
  cli.add_option("listen", "",
                 "serve GET /metrics (Prometheus), /healthz, and /runs over "
                 "HTTP while the suite is live; host:port, :port, or port "
                 "(host defaults to 127.0.0.1, port 0 binds an ephemeral "
                 "port; the bound endpoint is printed to stderr)");
  cli.add_option("events-out", "",
                 "write the dalut-events v1 structured JSONL lifecycle log "
                 "here (job/checkpoint/cache/failpoint events; bounded "
                 "queue, never blocks the workers)");
  cli.add_option("deadline", "",
                 "wall-clock budget for the whole suite ('30s', '5m', "
                 "'1h'); unfinished jobs checkpoint and exit code is 4");
  cli.add_option("dump-tables", "",
                 "export every job's resolved input truth table into this "
                 "directory as <job>.dalut (text) or <job>.dalutb "
                 "(--binary-tables)");
  cli.add_flag("binary-tables",
               "write exported truth tables as the bit-packed "
               "dalut-table-bin v1 container instead of hex text");
  cli.add_flag("progress",
               "print throttled per-job progress lines to stderr");
  cli.add_option("failpoints", "",
                 "arm deterministic fault injection: "
                 "site=error[@count|@every-k|@p=x:seed],... (also read "
                 "from DALUT_FAILPOINTS; see docs/robustness.md)");
  cli.add_flag("list-failpoints",
               "print every registered fault-injection site and exit");

  const auto args = expand_short_jobs(argc, argv);
  std::vector<char*> argv2;
  argv2.reserve(args.size());
  for (const auto& a : args) argv2.push_back(const_cast<char*>(a.c_str()));
  if (!cli.parse(static_cast<int>(argv2.size()), argv2.data())) {
    return kExitOk;
  }

  if (cli.flag("list-failpoints")) {
    for (const auto& site : util::fp::all_sites()) {
      std::printf("%s\n", site.c_str());
    }
    return kExitOk;
  }
  try {
    util::fp::configure_from_env();
    if (const auto spec = cli.str("failpoints"); !spec.empty()) {
      util::fp::configure(spec);
    }
  } catch (const std::invalid_argument& error) {
    std::fprintf(stderr, "error: --failpoints/DALUT_FAILPOINTS: %s\n",
                 error.what());
    return kExitUsage;
  }

  const auto manifest_path = cli.str("manifest");
  if (manifest_path.empty()) {
    std::fprintf(stderr, "error: --manifest <file> is required\n");
    return kExitFatal;
  }
  const auto manifest = suite::load_manifest(manifest_path);

  util::RunControl& control = g_control;
  if (const auto deadline = cli.str("deadline"); !deadline.empty()) {
    control.set_deadline_after(util::parse_duration(deadline, "--deadline"));
  }
  std::signal(SIGINT, handle_stop_signal);
  std::signal(SIGTERM, handle_stop_signal);

  const auto metrics_out = cli.str("metrics-out");
  const auto trace_out = cli.str("trace-out");
  const auto listen_spec = cli.str("listen");
  const auto events_out = cli.str("events-out");
  if (!metrics_out.empty()) util::telemetry::set_metrics_enabled(true);
  if (!trace_out.empty()) util::telemetry::set_tracing_enabled(true);

  // The live observability plane. Both surfaces are write-only for the
  // searches (docs/observability.md): the suite CSV and MEDs are
  // bit-identical with them on or off, at any worker count.
  obs::EventLog& events = obs::EventLog::instance();
  if (!events_out.empty()) {
    util::telemetry::set_metrics_enabled(true);
    try {
      events.open(events_out);
    } catch (const std::exception& error) {
      std::fprintf(stderr, "io error: %s\n", error.what());
      return kExitIo;
    }
  }
  obs::MetricsExporter exporter;  // stops (if started) when run() returns
  if (!listen_spec.empty()) {
    util::telemetry::set_metrics_enabled(true);
    obs::RunRegistry::instance().set_enabled(true);
    try {
      const auto [host, port] = obs::parse_listen_spec(listen_spec);
      obs::ExporterOptions exporter_options;
      exporter_options.host = host;
      exporter_options.port = port;
      exporter_options.control = &control;
      exporter.start(exporter_options);
    } catch (const std::invalid_argument& error) {
      std::fprintf(stderr, "error: %s\n", error.what());
      return kExitUsage;
    } catch (const std::exception& error) {
      std::fprintf(stderr, "io error: %s\n", error.what());
      return kExitIo;
    }
    // Grep-able and flushed before the run starts, so a harness scraping an
    // ephemeral port (--listen 127.0.0.1:0) can find it immediately.
    std::fprintf(stderr, "observability: listening on http://%s (/metrics, "
                 "/healthz, /runs)\n",
                 exporter.endpoint().c_str());
    std::fflush(stderr);
  }

  util::ThreadPool pool(util::resolve_worker_count(cli.integer("threads")));

  suite::SuiteOptions options;
  options.pool = &pool;
  options.control = &control;
  options.cache_dir = cli.str("cache-dir");
  options.cache_max_entries =
      static_cast<std::size_t>(cli.integer("cache-max"));
  options.checkpoint_dir = cli.str("checkpoint-dir");
  options.checkpoint_every =
      static_cast<unsigned>(cli.integer("checkpoint-every"));
  options.dump_tables_dir = cli.str("dump-tables");
  options.table_encoding = cli.flag("binary-tables")
                               ? core::TableEncoding::kBinary
                               : core::TableEncoding::kText;
  if (cli.flag("progress")) {
    options.progress = [](const std::string& job,
                          const util::RunProgress& p) {
      std::fprintf(stderr,
                   "progress: [%s] %s round %u bit %u (step %zu/%zu, best "
                   "%.4f)\n",
                   job.c_str(), p.stage, p.round, p.bit, p.steps_done,
                   p.steps_total, p.best_error);
    };
  }

  events.emit("suite.start", {}, manifest.jobs.size());
  const auto report = suite::run_suite(manifest, options);
  events.emit("suite.finish", {},
              static_cast<std::uint64_t>(report.any_failed));

  // --- Human summary (stderr; the CSV owns stdout when --csv-out=""). ---
  for (const auto& o : report.outcomes) {
    if (!o.error.empty()) {
      std::fprintf(stderr, "job %-24s FAILED: %s\n", o.job.name.c_str(),
                   o.error.c_str());
    } else if (!o.started) {
      std::fprintf(stderr, "job %-24s skipped (%s)\n", o.job.name.c_str(),
                   util::to_string(o.status));
    } else {
      std::fprintf(stderr,
                   "job %-24s %s  med %.6g  stored %llu bits%s%s\n",
                   o.job.name.c_str(), util::to_string(o.status),
                   o.record.med,
                   static_cast<unsigned long long>(o.record.stored_bits),
                   o.from_cache ? "  [cache]" : "",
                   o.resumed ? "  [resumed]" : "");
    }
  }
  std::fprintf(stderr,
               "result cache: %llu hits, %llu misses\nsuite %s in %.2f s\n",
               static_cast<unsigned long long>(report.cache_hits),
               static_cast<unsigned long long>(report.cache_misses),
               util::to_string(report.status), report.runtime_seconds);

  // --- Deterministic CSV. ---
  if (const auto path = cli.str("csv-out"); !path.empty()) {
    std::ofstream out(path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "io error: cannot write CSV to '%s': %s\n",
                   path.c_str(), std::strerror(errno));
      return kExitIo;
    }
    suite::write_suite_csv(out, report);
    out.flush();
    if (!out) {
      std::fprintf(stderr, "io error: cannot write CSV to '%s': %s\n",
                   path.c_str(), std::strerror(errno));
      return kExitIo;
    }
  } else {
    suite::write_suite_csv(std::cout, report);
  }

  // Close the event log before the metrics artifact so its written/dropped
  // counters are final in the snapshot below.
  events.close();

  // --- Metrics artifact. ---
  if (!metrics_out.empty()) {
    std::ofstream out(metrics_out);
    if (!out) {
      std::fprintf(stderr, "io error: cannot write metrics to '%s': %s\n",
                   metrics_out.c_str(), std::strerror(errno));
      return kExitIo;
    }
    out << "{\n  \"schema\": \"dalut-metrics-v1\",\n  \"suite\": {\n"
        << "    \"manifest\": \""
        << util::telemetry::json_escape(manifest_path)
        << "\",\n    \"jobs\": " << manifest.jobs.size()
        << ",\n    \"threads\": " << pool.worker_count()
        << ",\n    \"status\": \"" << util::to_string(report.status)
        << "\",\n    \"cache_hits\": " << report.cache_hits
        << ",\n    \"cache_misses\": " << report.cache_misses
        << ",\n    \"runtime_seconds\": "
        << util::telemetry::json_number(report.runtime_seconds)
        << "\n  },\n  \"jobs\":\n";
    suite::write_suite_jobs_json(out, report, 2);
    out << ",\n  \"metrics\":\n";
    util::telemetry::write_metrics_json(
        out, util::telemetry::snapshot_metrics(), 2);
    out << ",\n  \"trajectory\":\n";
    suite::write_suite_trajectory_json(out, report, 2);
    out << "\n}\n";
    std::fprintf(stderr, "wrote metrics to %s\n", metrics_out.c_str());
  }

  // --- Trace artifact (one suite.job span per attempt, arg = job name). ---
  if (!trace_out.empty()) {
    std::ofstream out(trace_out);
    if (!out) {
      std::fprintf(stderr, "io error: cannot write trace to '%s': %s\n",
                   trace_out.c_str(), std::strerror(errno));
      return kExitIo;
    }
    util::telemetry::write_chrome_trace(out);
    out.flush();
    if (!out) {
      std::fprintf(stderr, "io error: cannot write trace to '%s': %s\n",
                   trace_out.c_str(), std::strerror(errno));
      return kExitIo;
    }
    std::fprintf(stderr, "wrote trace to %s\n", trace_out.c_str());
  }

  if (util::fp::active()) {
    std::fprintf(stderr, "failpoints:\n%s", util::fp::dump().c_str());
  }

  switch (report.status) {
    case util::RunStatus::kDeadlineExpired:
      return kExitDeadline;
    case util::RunStatus::kCancelled:
      return kExitCancelled;
    case util::RunStatus::kCompleted:
      break;
  }
  // Quarantined jobs exit distinctly *after* the full report is out: the
  // suite finished, the CSV names the failures, and automation can tell
  // "some jobs failed" (7) from "the suite itself fell over" (1/6).
  if (report.any_failed) return kExitJobsFailed;
  return kExitOk;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::invalid_argument& error) {
    std::fprintf(stderr, "parse error: %s\n", error.what());
    return kExitParse;
  } catch (const util::IoError& error) {
    std::fprintf(stderr, "io error: %s (errno %d%s%s)\n", error.what(),
                 error.error_code(),
                 error.site().empty() ? "" : ", site ",
                 error.site().c_str());
    return kExitIo;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "fatal: %s\n", error.what());
    return kExitFatal;
  }
}
